//! Hypergraph model and partitioner — the stand-in for PaToH (paper §4.1).
//!
//! The SpMM of a GCN layer under vertex partitioning communicates the
//! feature row of `v` to every processor owning an in-neighbor of `v`. The
//! standard column-net hypergraph model captures this: one net per vertex
//! `v` with pins `{v} ∪ Γ(v)`; the connectivity−1 metric of a partition is
//! exactly the number of feature-vector transfers per SpMM.
//!
//! The partitioner is a greedy-growth + FM-refinement heuristic. It is not
//! PaToH-quality, but the paper's comparison only needs *a* reasonable
//! vertex partitioner: the qualitative behaviour (volume grows with P,
//! irregular communication) is partitioner-independent.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dgnn_graph::DynamicGraph;
use dgnn_tensor::Csr;

/// A hypergraph in pin-list form.
#[derive(Clone, Debug)]
pub struct Hypergraph {
    n_vertices: usize,
    /// Net -> pins.
    pins: Vec<Vec<u32>>,
    /// Net weights (e.g. how many timesteps the net is active in).
    weights: Vec<f32>,
}

impl Hypergraph {
    /// Builds a hypergraph from explicit pin lists with unit weights.
    pub fn new(n_vertices: usize, pins: Vec<Vec<u32>>) -> Self {
        let weights = vec![1.0; pins.len()];
        Self {
            n_vertices,
            pins,
            weights,
        }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of nets.
    pub fn n_nets(&self) -> usize {
        self.pins.len()
    }

    /// Pins of a net.
    pub fn net(&self, i: usize) -> &[u32] {
        &self.pins[i]
    }

    /// Weight of a net.
    pub fn weight(&self, i: usize) -> f32 {
        self.weights[i]
    }

    /// Column-net model of a dynamic graph's union structure: a net per
    /// vertex `v` containing `v` and every vertex adjacent to `v` in any
    /// snapshot (both directions, since the Laplacian is symmetrized). The
    /// net weight is the number of snapshots in which `v` has at least one
    /// neighbor — nets active in many timesteps cost more.
    pub fn column_net_model(g: &DynamicGraph) -> Self {
        let n = g.n();
        let union = g.union_graph();
        let sym = Csr::add_weighted(&[(1.0, &union), (1.0, &union.transpose())]);
        let mut pins: Vec<Vec<u32>> = Vec::with_capacity(n);
        for v in 0..n {
            let mut p: Vec<u32> = sym.row_iter(v).map(|(c, _)| c).collect();
            p.push(v as u32);
            p.sort_unstable();
            p.dedup();
            pins.push(p);
        }
        // Active-timestep counts per vertex.
        let mut weights = vec![0f32; n];
        for s in g.snapshots() {
            let out_deg = s.adj().row_degrees();
            let in_deg = s.adj().col_degrees();
            for v in 0..n {
                if out_deg[v] + in_deg[v] > 0 {
                    weights[v] += 1.0;
                }
            }
        }
        for w in &mut weights {
            *w = w.max(1.0);
        }
        Self {
            n_vertices: n,
            pins,
            weights,
        }
    }

    /// Weighted connectivity−1 cost of a partition: `Σ_net w(net) ·
    /// (parts touched − 1)`.
    pub fn connectivity_cost(&self, partition: &[usize], p: usize) -> f64 {
        assert_eq!(partition.len(), self.n_vertices);
        let mut seen = vec![usize::MAX; p];
        let mut cost = 0.0f64;
        for (i, net) in self.pins.iter().enumerate() {
            let mut parts = 0usize;
            for &pin in net {
                let part = partition[pin as usize];
                if seen[part] != i {
                    seen[part] = i;
                    parts += 1;
                }
            }
            if parts > 1 {
                cost += f64::from(self.weights[i]) * (parts - 1) as f64;
            }
        }
        cost
    }
}

/// Configuration of the heuristic partitioner.
#[derive(Clone, Copy, Debug)]
pub struct PartitionerConfig {
    /// Number of parts.
    pub parts: usize,
    /// Allowed imbalance: part sizes at most `(1 + epsilon) * n / parts`.
    pub epsilon: f64,
    /// FM refinement passes.
    pub refinement_passes: usize,
    /// RNG seed for the growth order.
    pub seed: u64,
}

impl PartitionerConfig {
    /// Default configuration for `parts` parts.
    pub fn new(parts: usize) -> Self {
        Self {
            parts,
            epsilon: 0.05,
            refinement_passes: 4,
            seed: 0x9a17,
        }
    }
}

/// Partitions the hypergraph vertices into `cfg.parts` balanced parts,
/// minimising the connectivity−1 objective. Returns the vertex → part map.
pub fn partition(hg: &Hypergraph, cfg: &PartitionerConfig) -> Vec<usize> {
    let n = hg.n_vertices();
    let p = cfg.parts;
    assert!(p >= 1);
    if p == 1 {
        return vec![0; n];
    }
    let cap = (((n as f64) / p as f64) * (1.0 + cfg.epsilon)).ceil() as usize;

    // Vertex -> incident nets (nets whose pin list contains the vertex).
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, net) in hg.pins.iter().enumerate() {
        for &pin in net {
            incident[pin as usize].push(i as u32);
        }
    }

    // --- Phase 1: greedy BFS growth. Grow parts one at a time, preferring
    // vertices that share nets with the current part.
    let mut part_of = vec![usize::MAX; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    order.shuffle(&mut rng);
    let mut order_cursor = 0usize;
    let mut sizes = vec![0usize; p];
    let target = n.div_ceil(p);

    for cur in 0..p {
        let mut frontier: Vec<u32> = Vec::new();
        while sizes[cur] < target {
            let v = match frontier.pop() {
                Some(v) if part_of[v as usize] == usize::MAX => v,
                Some(_) => continue,
                None => {
                    // Take the next unassigned seed.
                    let mut seed = None;
                    while order_cursor < n {
                        let cand = order[order_cursor];
                        order_cursor += 1;
                        if part_of[cand as usize] == usize::MAX {
                            seed = Some(cand);
                            break;
                        }
                    }
                    match seed {
                        Some(s) => s,
                        None => break,
                    }
                }
            };
            part_of[v as usize] = cur;
            sizes[cur] += 1;
            for &net in &incident[v as usize] {
                for &u in hg.net(net as usize) {
                    if part_of[u as usize] == usize::MAX {
                        frontier.push(u);
                    }
                }
            }
        }
    }
    // Any stragglers go to the lightest part.
    for v in 0..n {
        if part_of[v] == usize::MAX {
            let lightest = (0..p).min_by_key(|&q| sizes[q]).unwrap();
            part_of[v] = lightest;
            sizes[lightest] += 1;
        }
    }

    // --- Phase 2: FM-style refinement on the connectivity objective.
    // Net -> per-part pin counts, maintained incrementally.
    let mut net_counts: Vec<Vec<u32>> = hg
        .pins
        .iter()
        .map(|net| {
            let mut counts = vec![0u32; p];
            for &pin in net {
                counts[part_of[pin as usize]] += 1;
            }
            counts
        })
        .collect();

    for _ in 0..cfg.refinement_passes {
        let mut moved = 0usize;
        for v in 0..n {
            let from = part_of[v];
            if sizes[from] <= 1 {
                continue;
            }
            // Gain of moving v to part q: for each incident net, removing v
            // from `from` saves w if v was the last pin there; adding v to q
            // costs w if q had no pin.
            let mut best: Option<(usize, f64)> = None;
            for q in 0..p {
                if q == from || sizes[q] + 1 > cap {
                    continue;
                }
                let mut gain = 0.0f64;
                for &net in &incident[v] {
                    let counts = &net_counts[net as usize];
                    let w = f64::from(hg.weights[net as usize]);
                    if counts[from] == 1 {
                        gain += w;
                    }
                    if counts[q] == 0 {
                        gain -= w;
                    }
                }
                if gain > best.map_or(0.0, |(_, g)| g) {
                    best = Some((q, gain));
                }
            }
            if let Some((q, _)) = best {
                for &net in &incident[v] {
                    let counts = &mut net_counts[net as usize];
                    counts[from] -= 1;
                    counts[q] += 1;
                }
                sizes[from] -= 1;
                sizes[q] += 1;
                part_of[v] = q;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    part_of
}

/// Renames vertices so that every part is a contiguous range (the paper
/// renames for implementation efficiency, §6.4). Returns `(perm, inv)`
/// where `perm[old] = new` and `inv[new] = old`.
pub fn contiguous_renaming(partition: &[usize], p: usize) -> (Vec<u32>, Vec<u32>) {
    let n = partition.len();
    let mut perm = vec![0u32; n];
    let mut inv = vec![0u32; n];
    let mut next = 0u32;
    for q in 0..p {
        for (v, &part) in partition.iter().enumerate() {
            if part == q {
                perm[v] = next;
                inv[next as usize] = v as u32;
                next += 1;
            }
        }
    }
    assert_eq!(next as usize, n);
    (perm, inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::gen::churn;
    use dgnn_graph::Snapshot;

    fn two_cliques() -> DynamicGraph {
        // Two disjoint 4-cliques: a perfect 2-way partition has zero cost.
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        edges.push((base + i, base + j));
                    }
                }
            }
        }
        DynamicGraph::new(8, vec![Snapshot::from_edges(8, &edges)])
    }

    #[test]
    fn column_net_model_shapes() {
        let g = two_cliques();
        let hg = Hypergraph::column_net_model(&g);
        assert_eq!(hg.n_vertices(), 8);
        assert_eq!(hg.n_nets(), 8);
        // Every net covers its clique.
        assert_eq!(hg.net(0).len(), 4);
    }

    #[test]
    fn partitioner_finds_clique_split() {
        let g = two_cliques();
        let hg = Hypergraph::column_net_model(&g);
        let part = partition(&hg, &PartitionerConfig::new(2));
        let cost = hg.connectivity_cost(&part, 2);
        assert_eq!(cost, 0.0, "partition {part:?}");
        // Balanced 4/4.
        assert_eq!(part.iter().filter(|&&q| q == 0).count(), 4);
    }

    #[test]
    fn partition_is_balanced_on_random_graph() {
        let g = churn(200, 3, 600, 0.2, 5);
        let hg = Hypergraph::column_net_model(&g);
        let cfg = PartitionerConfig::new(4);
        let part = partition(&hg, &cfg);
        for q in 0..4 {
            let size = part.iter().filter(|&&x| x == q).count();
            assert!(size <= 53, "part {q} size {size}"); // 200/4 * 1.05
            assert!(size >= 40, "part {q} size {size}");
        }
    }

    #[test]
    fn refinement_does_not_increase_cost() {
        let g = churn(150, 2, 450, 0.3, 8);
        let hg = Hypergraph::column_net_model(&g);
        let no_refine = partition(
            &hg,
            &PartitionerConfig {
                refinement_passes: 0,
                ..PartitionerConfig::new(4)
            },
        );
        let refined = partition(&hg, &PartitionerConfig::new(4));
        assert!(
            hg.connectivity_cost(&refined, 4) <= hg.connectivity_cost(&no_refine, 4),
            "refinement regressed"
        );
    }

    #[test]
    fn cost_grows_with_parts() {
        // The paper's core observation about vertex partitioning.
        let g = churn(240, 3, 900, 0.2, 9);
        let hg = Hypergraph::column_net_model(&g);
        let cost = |p: usize| hg.connectivity_cost(&partition(&hg, &PartitionerConfig::new(p)), p);
        let c2 = cost(2);
        let c8 = cost(8);
        assert!(c8 > c2, "cost should grow with P: {c2} vs {c8}");
    }

    #[test]
    fn renaming_is_a_permutation_with_contiguous_parts() {
        let partition = vec![1usize, 0, 1, 0, 2, 1];
        let (perm, inv) = contiguous_renaming(&partition, 3);
        for v in 0..6 {
            assert_eq!(inv[perm[v] as usize] as usize, v);
        }
        // New ids of part 0 come first.
        let mut new_ids: Vec<(u32, usize)> = (0..6).map(|v| (perm[v], partition[v])).collect();
        new_ids.sort_unstable();
        let parts_in_order: Vec<usize> = new_ids.iter().map(|&(_, q)| q).collect();
        assert_eq!(parts_in_order, vec![0, 0, 1, 1, 1, 2]);
    }

    #[test]
    fn single_part_is_trivial() {
        let g = two_cliques();
        let hg = Hypergraph::column_net_model(&g);
        let part = partition(&hg, &PartitionerConfig::new(1));
        assert!(part.iter().all(|&q| q == 0));
        assert_eq!(hg.connectivity_cost(&part, 1), 0.0);
    }
}
