//! Snapshot partitioning (paper §4.2): timesteps are distributed among the
//! ranks in contiguous runs — globally contiguous in the plain scheme, or
//! contiguous *within each checkpoint block* in the checkpointed scheme
//! (paper Fig. 3b).

use std::ops::Range;

/// Balanced split of `len` items into `parts` contiguous ranges; the first
/// `len % parts` ranges get one extra item.
pub fn balanced_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "need at least one part");
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Assignment of timesteps to ranks.
#[derive(Clone, Debug)]
pub struct SnapshotPartition {
    t: usize,
    p: usize,
    owner: Vec<usize>,
}

impl SnapshotPartition {
    /// Plain contiguous partitioning: rank `p` owns timesteps
    /// `[p*T/P, (p+1)*T/P)` (paper §4.2, Fig. 3a).
    pub fn contiguous(t: usize, p: usize) -> Self {
        let mut owner = vec![0usize; t];
        for (rank, range) in balanced_ranges(t, p).into_iter().enumerate() {
            for ti in range {
                owner[ti] = rank;
            }
        }
        Self { t, p, owner }
    }

    /// Checkpoint-aware block-wise partitioning: the timeline is cut into
    /// `nb` blocks and each block is split contiguously among the ranks, so
    /// every rank participates in every block (paper Fig. 3b).
    pub fn block_wise(t: usize, p: usize, nb: usize) -> Self {
        assert!(nb >= 1, "need at least one block");
        let mut owner = vec![0usize; t];
        for block in balanced_ranges(t, nb) {
            let len = block.len();
            for (rank, local) in balanced_ranges(len, p).into_iter().enumerate() {
                for ti in local {
                    owner[block.start + ti] = rank;
                }
            }
        }
        Self { t, p, owner }
    }

    /// Number of timesteps.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The rank owning timestep `t`.
    pub fn owner(&self, t: usize) -> usize {
        self.owner[t]
    }

    /// All timesteps owned by `rank`, ascending.
    pub fn timesteps_of(&self, rank: usize) -> Vec<usize> {
        (0..self.t).filter(|&ti| self.owner[ti] == rank).collect()
    }

    /// The contiguous runs of timesteps owned by `rank`, ascending.
    ///
    /// Graph-difference transfer operates per run: the first snapshot of a
    /// run ships naively and the rest ship as differences, which is why the
    /// GD benefit fraction is `(bsize_p - 1)/bsize_p` (paper §6.2).
    pub fn runs_of(&self, rank: usize) -> Vec<Range<usize>> {
        let mut runs = Vec::new();
        let mut cur: Option<Range<usize>> = None;
        for ti in 0..self.t {
            if self.owner[ti] == rank {
                cur = match cur {
                    Some(r) if r.end == ti => Some(r.start..ti + 1),
                    Some(r) => {
                        runs.push(r);
                        Some(ti..ti + 1)
                    }
                    None => Some(ti..ti + 1),
                };
            }
        }
        if let Some(r) = cur {
            runs.push(r);
        }
        runs
    }

    /// Largest number of timesteps owned by any rank.
    pub fn max_local(&self) -> usize {
        (0..self.p)
            .map(|r| self.timesteps_of(r).len())
            .max()
            .unwrap_or(0)
    }
}

/// Contiguous vertex chunks used by the RNN redistribution (paper §4.2):
/// rank `q` owns vertices `[q*N/P, (q+1)*N/P)`.
#[derive(Clone, Copy, Debug)]
pub struct VertexChunks {
    n: usize,
    p: usize,
}

impl VertexChunks {
    /// Chunking of `n` vertices over `p` ranks.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p > 0);
        Self { n, p }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The vertex range owned by rank `q`.
    pub fn range(&self, q: usize) -> Range<usize> {
        let ranges = balanced_ranges(self.n, self.p);
        ranges[q].clone()
    }

    /// The rank owning vertex `v`.
    pub fn owner_of(&self, v: usize) -> usize {
        // Inverse of balanced_ranges: the first `extra` chunks have size
        // base+1.
        let base = self.n / self.p;
        let extra = self.n % self.p;
        let big = (base + 1) * extra;
        if v < big {
            v / (base + 1)
        } else {
            extra + (v - big) / base.max(1)
        }
    }

    /// Chunk length of rank `q`.
    pub fn len_of(&self, q: usize) -> usize {
        self.range(q).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_ranges_cover_everything() {
        for (len, parts) in [(10, 3), (12, 4), (7, 8), (0, 2), (5, 1)] {
            let ranges = balanced_ranges(len, parts);
            assert_eq!(ranges.len(), parts);
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, len);
            // Contiguous and ordered.
            let mut pos = 0;
            for r in &ranges {
                assert_eq!(r.start, pos);
                pos = r.end;
            }
            // Sizes differ by at most one.
            let min = ranges.iter().map(|r| r.len()).min().unwrap();
            let max = ranges.iter().map(|r| r.len()).max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn contiguous_matches_paper_example() {
        // T = 6, P = 3: ranks own [0,1], [2,3], [4,5] (paper Fig. 3a).
        let part = SnapshotPartition::contiguous(6, 3);
        assert_eq!(part.timesteps_of(0), vec![0, 1]);
        assert_eq!(part.timesteps_of(1), vec![2, 3]);
        assert_eq!(part.timesteps_of(2), vec![4, 5]);
        assert_eq!(part.runs_of(1), vec![2..4]);
    }

    #[test]
    fn block_wise_matches_paper_example() {
        // T = 12, P = 3, nb = 2 (paper Fig. 3b): block 1 = [0..6), block 2 =
        // [6..12); within each block ranks get 2 contiguous steps.
        let part = SnapshotPartition::block_wise(12, 3, 2);
        assert_eq!(part.timesteps_of(0), vec![0, 1, 6, 7]);
        assert_eq!(part.timesteps_of(1), vec![2, 3, 8, 9]);
        assert_eq!(part.timesteps_of(2), vec![4, 5, 10, 11]);
        // Two runs per rank: one per block.
        assert_eq!(part.runs_of(0), vec![0..2, 6..8]);
    }

    #[test]
    fn block_wise_with_one_block_equals_contiguous() {
        let a = SnapshotPartition::block_wise(9, 3, 1);
        let b = SnapshotPartition::contiguous(9, 3);
        for t in 0..9 {
            assert_eq!(a.owner(t), b.owner(t));
        }
    }

    #[test]
    fn every_timestep_owned_once() {
        let part = SnapshotPartition::block_wise(23, 4, 3);
        let mut seen = [false; 23];
        for r in 0..4 {
            for t in part.timesteps_of(r) {
                assert!(!seen[t]);
                seen[t] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vertex_chunks_owner_inverse() {
        for (n, p) in [(10, 3), (16, 4), (7, 7), (100, 8)] {
            let chunks = VertexChunks::new(n, p);
            for q in 0..p {
                for v in chunks.range(q) {
                    assert_eq!(chunks.owner_of(v), q, "n={n} p={p} v={v}");
                }
            }
        }
    }

    #[test]
    fn idle_ranks_when_t_less_than_p() {
        // The §6.5 limitation: T < P leaves ranks idle.
        let part = SnapshotPartition::contiguous(2, 4);
        let owned: Vec<usize> = (0..4).map(|r| part.timesteps_of(r).len()).collect();
        assert_eq!(owned, vec![1, 1, 0, 0]);
    }
}
