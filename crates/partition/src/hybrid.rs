//! Hybrid partitioning (paper §6.5): processor groups share individual
//! snapshots, splitting each snapshot's rows among the group members. This
//! handles snapshots too large for a single GPU and the `T < P` idle-rank
//! problem.

use std::ops::Range;

use dgnn_tensor::Csr;

use crate::snapshot_part::{balanced_ranges, SnapshotPartition};

/// A two-level layout: ranks are organised into equally-sized groups;
/// snapshots are distributed among groups (snapshot partitioning at group
/// granularity) and split row-wise inside each group.
#[derive(Clone, Debug)]
pub struct HybridPartition {
    n: usize,
    group_size: usize,
    groups: usize,
    snapshot_part: SnapshotPartition,
}

impl HybridPartition {
    /// Builds a hybrid layout for `p` ranks in groups of `group_size` over
    /// `t` timesteps and `n` vertices.
    pub fn new(n: usize, t: usize, p: usize, group_size: usize) -> Self {
        assert!(
            group_size >= 1 && p.is_multiple_of(group_size),
            "p must be a multiple of group_size"
        );
        let groups = p / group_size;
        Self {
            n,
            group_size,
            groups,
            snapshot_part: SnapshotPartition::contiguous(t, groups),
        }
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Ranks per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The group a rank belongs to.
    pub fn group_of_rank(&self, rank: usize) -> usize {
        rank / self.group_size
    }

    /// A rank's position inside its group.
    pub fn member_of_rank(&self, rank: usize) -> usize {
        rank % self.group_size
    }

    /// Snapshot assignment at group granularity.
    pub fn snapshot_part(&self) -> &SnapshotPartition {
        &self.snapshot_part
    }

    /// The row range of a snapshot owned by group member `member`.
    pub fn row_range(&self, member: usize) -> Range<usize> {
        balanced_ranges(self.n, self.group_size)[member].clone()
    }

    /// Splits one snapshot into the row blocks of each group member.
    pub fn split_snapshot(&self, adj: &Csr) -> Vec<Csr> {
        assert_eq!(adj.rows(), self.n);
        (0..self.group_size)
            .map(|m| {
                let r = self.row_range(m);
                adj.row_block(r.start, r.len())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_tensor::Dense;

    #[test]
    fn layout_shapes() {
        let h = HybridPartition::new(100, 8, 8, 2);
        assert_eq!(h.groups(), 4);
        assert_eq!(h.group_of_rank(5), 2);
        assert_eq!(h.member_of_rank(5), 1);
        // Each group owns 2 timesteps.
        assert_eq!(h.snapshot_part().timesteps_of(0), vec![0, 1]);
    }

    #[test]
    fn row_split_partitions_rows() {
        let h = HybridPartition::new(10, 4, 4, 2);
        assert_eq!(h.row_range(0), 0..5);
        assert_eq!(h.row_range(1), 5..10);
    }

    #[test]
    fn split_spmm_stacks_to_full_spmm() {
        // The functional core of hybrid SpMM: each member computes its row
        // block against the *full* feature matrix; stacking reproduces the
        // single-GPU result.
        let adj = Csr::from_edges(6, &[(0, 1), (1, 2), (3, 4), (5, 0), (2, 5)]);
        let h = HybridPartition::new(6, 2, 2, 2);
        let x = Dense::from_fn(6, 3, |r, c| (r * 3 + c) as f32 * 0.1);
        let blocks = h.split_snapshot(&adj);
        let parts: Vec<Dense> = blocks.iter().map(|b| b.spmm(&x)).collect();
        let stacked = Dense::vstack(&parts.iter().collect::<Vec<_>>());
        assert!(stacked.approx_eq(&adj.spmm(&x), 1e-6));
    }

    #[test]
    #[should_panic(expected = "multiple of group_size")]
    fn group_size_must_divide() {
        let _ = HybridPartition::new(10, 4, 6, 4);
    }
}
