//! # dgnn-partition
//!
//! Data-distribution schemes for distributed dynamic-GNN training
//! (paper §4): snapshot partitioning with contiguous and checkpoint-
//! block-wise assignment, contiguous vertex chunks for the RNN
//! redistribution, the hypergraph column-net model with a PaToH-substitute
//! partitioner for the vertex-partitioning baseline, exact communication-
//! volume accounting for both schemes, and the hybrid (intra-snapshot)
//! layout of §6.5.

pub mod hybrid;
pub mod hypergraph;
pub mod snapshot_part;
pub mod volume;

pub use hybrid::HybridPartition;
pub use hypergraph::{contiguous_renaming, partition, Hypergraph, PartitionerConfig};
pub use snapshot_part::{balanced_ranges, SnapshotPartition, VertexChunks};
pub use volume::{
    evolvegcn_allreduce_floats, snapshot_epoch_units, snapshot_layer_units, units_to_floats,
    vertex_epoch_units, vertex_spmm_units,
};
