//! Exact communication-volume accounting for both distribution schemes
//! (paper §4.2 and Table 2). Volumes are counted in *units* (feature
//! vectors) or in floats when a feature width is supplied.

use dgnn_graph::DynamicGraph;

/// Per-layer forward redistribution volume of snapshot partitioning, in
/// units (feature vectors).
///
/// Each layer performs two all-to-alls (GCN output → vertex chunks, RNN
/// output → snapshot owners); each moves every one of the `T·N` feature
/// vectors except the self-addressed fraction `1/P`, hence
/// `2 · T · N · (P-1)/P` (paper §6.4 notes the `(P−1)/P` factor).
pub fn snapshot_layer_units(t: usize, n: usize, p: usize) -> u64 {
    if p <= 1 {
        return 0;
    }
    (2 * t as u64 * n as u64 * (p as u64 - 1)) / p as u64
}

/// Full-epoch snapshot-partitioning volume in units across `layers` dynamic
/// GNN layers, forward plus (symmetric) backward (paper §4.2:
/// "the procedure involves two gradient re-distributions").
pub fn snapshot_epoch_units(t: usize, n: usize, p: usize, layers: usize) -> u64 {
    2 * layers as u64 * snapshot_layer_units(t, n, p)
}

/// Per-SpMM vertex-partitioning volume in units: for every timestep and
/// every vertex `v`, the feature row of `v` travels to each non-owner
/// processor holding an in-neighbor of `u`, i.e. `Σ_t Σ_v (λ_t(v) − 1)`
/// where λ counts distinct processors among `{v} ∪ Γ_t(v)` (paper §4.1).
///
/// The Laplacian symmetrizes the structure, so neighbors are taken in both
/// directions.
pub fn vertex_spmm_units(g: &DynamicGraph, partition: &[usize], p: usize) -> u64 {
    assert_eq!(partition.len(), g.n());
    let mut total = 0u64;
    let mut seen = vec![u64::MAX; p];
    let mut stamp = 0u64;
    for s in g.snapshots() {
        let adj = s.adj();
        let tr = adj.transpose();
        for v in 0..g.n() {
            stamp += 1;
            let mut parts = 0u64;
            let owner = partition[v];
            seen[owner] = stamp;
            parts += 1;
            for (u, _) in adj.row_iter(v).chain(tr.row_iter(v)) {
                let q = partition[u as usize];
                if seen[q] != stamp {
                    seen[q] = stamp;
                    parts += 1;
                }
            }
            total += parts - 1;
        }
    }
    total
}

/// Full-epoch vertex-partitioning volume in units: one SpMM per layer in
/// the forward pass and a symmetric transfer in the backward pass.
pub fn vertex_epoch_units(g: &DynamicGraph, partition: &[usize], p: usize, layers: usize) -> u64 {
    2 * layers as u64 * vertex_spmm_units(g, partition, p)
}

/// Converts a unit count to floats given a feature width.
pub fn units_to_floats(units: u64, feature_width: usize) -> u64 {
    units * feature_width as u64
}

/// EvolveGCN's only communication: the end-of-epoch gradient all-reduce
/// over the model parameters — `2 · (P−1)/P · total_params` floats per rank
/// pair under a ring all-reduce, negligible next to feature volumes
/// (paper §5.5, Table 2 reports it as 0).
pub fn evolvegcn_allreduce_floats(total_params: usize, p: usize) -> u64 {
    if p <= 1 {
        return 0;
    }
    (2 * total_params as u64 * (p as u64 - 1)) / p as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::gen::churn;
    use dgnn_graph::Snapshot;

    #[test]
    fn snapshot_volume_is_fixed_in_graph_density() {
        // The paper's headline property: O(T·N), independent of structure.
        let u = snapshot_layer_units(100, 1000, 8);
        assert_eq!(u, 2 * 100 * 1000 * 7 / 8);
    }

    #[test]
    fn snapshot_volume_saturates_with_p() {
        let v16 = snapshot_layer_units(100, 1000, 16);
        let v128 = snapshot_layer_units(100, 1000, 128);
        let limit = 2 * 100 * 1000;
        assert!(v16 < v128);
        assert!(v128 < limit);
        assert!((limit - v128) * 64 < limit * 2); // within ~1/64
    }

    #[test]
    fn single_rank_communicates_nothing() {
        assert_eq!(snapshot_layer_units(10, 10, 1), 0);
        let g = churn(20, 2, 40, 0.2, 1);
        assert_eq!(vertex_spmm_units(&g, &[0; 20], 1), 0);
    }

    #[test]
    fn vertex_volume_counts_boundary_neighbors() {
        // Path 0-1-2 split as {0,1} | {2}: vertex 1's row is needed by part
        // 1 (in-neighbor 2 via symmetrized structure), vertex 2's row by
        // part 0.
        let g = DynamicGraph::new(3, vec![Snapshot::from_edges(3, &[(0, 1), (1, 2)])]);
        let partition = vec![0usize, 0, 1];
        let units = vertex_spmm_units(&g, &partition, 2);
        assert_eq!(units, 2);
    }

    #[test]
    fn vertex_volume_zero_for_separated_components() {
        let g = DynamicGraph::new(
            4,
            vec![Snapshot::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)])],
        );
        let partition = vec![0usize, 0, 1, 1];
        assert_eq!(vertex_spmm_units(&g, &partition, 2), 0);
    }

    #[test]
    fn vertex_volume_grows_with_parts_on_random_graphs() {
        let g = churn(120, 3, 600, 0.2, 3);
        // Contiguous chunks as a crude partition.
        let part_for = |p: usize| -> Vec<usize> { (0..120).map(|v| v * p / 120).collect() };
        let v2 = vertex_spmm_units(&g, &part_for(2), 2);
        let v8 = vertex_spmm_units(&g, &part_for(8), 8);
        assert!(v8 > v2, "volume should grow with P: {v2} vs {v8}");
    }

    #[test]
    fn epoch_units_double_for_backward() {
        let g = churn(50, 2, 100, 0.2, 4);
        let part = vec![0usize; 50];
        assert_eq!(
            vertex_epoch_units(&g, &part, 1, 2),
            2 * 2 * vertex_spmm_units(&g, &part, 1)
        );
        assert_eq!(
            snapshot_epoch_units(10, 10, 4, 2),
            4 * snapshot_layer_units(10, 10, 4)
        );
    }

    #[test]
    fn allreduce_is_tiny() {
        let floats = evolvegcn_allreduce_floats(10_000, 64);
        assert!(floats < 20_000);
    }
}
