//! Finite-difference verification of every differentiable op and of
//! representative composites (a GCN step, an LSTM-style gate block).

use std::rc::Rc;

use dgnn_autograd::gradcheck::{check_input_grad, check_param_grads};
use dgnn_autograd::{ParamStore, Tape};
use dgnn_tensor::init::glorot_uniform;
use dgnn_tensor::Csr;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0xD6)
}

#[test]
fn matmul_grads() {
    let mut rng = rng();
    let mut store = ParamStore::new();
    let a = store.add("a", glorot_uniform(3, 4, &mut rng));
    let b = store.add("b", glorot_uniform(4, 2, &mut rng));
    check_param_grads(
        &mut store,
        |tape, store| {
            let av = tape.param(store, a);
            let bv = tape.param(store, b);
            let y = tape.matmul(av, bv);
            tape.mean_all(y)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn spmm_grads() {
    let adj = Rc::new(Csr::from_edges(
        4,
        &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
    ));
    let mut rng = rng();
    let mut store = ParamStore::new();
    let x = store.add("x", glorot_uniform(4, 3, &mut rng));
    check_param_grads(
        &mut store,
        |tape, store| {
            let xv = tape.param(store, x);
            let y = tape.spmm(Rc::clone(&adj), xv);
            tape.mean_all(y)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn elementwise_grads() {
    let mut rng = rng();
    let mut store = ParamStore::new();
    let a = store.add("a", glorot_uniform(2, 3, &mut rng));
    let b = store.add("b", glorot_uniform(2, 3, &mut rng));
    check_param_grads(
        &mut store,
        |tape, store| {
            let av = tape.param(store, a);
            let bv = tape.param(store, b);
            let s = tape.add(av, bv);
            let d = tape.sub(s, bv);
            let h = tape.hadamard(d, av);
            let sc = tape.scale(h, 0.7);
            tape.mean_all(sc)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn activation_grads() {
    let mut rng = rng();
    let mut store = ParamStore::new();
    let a = store.add("a", glorot_uniform(3, 3, &mut rng));
    for act in 0..3usize {
        check_param_grads(
            &mut store,
            |tape, store| {
                let av = tape.param(store, a);
                let y = match act {
                    0 => tape.sigmoid(av),
                    1 => tape.tanh(av),
                    _ => tape.relu(av),
                };
                tape.mean_all(y)
            },
            EPS,
            TOL,
        )
        .unwrap_or_else(|e| panic!("activation {act}: {e:?}"));
    }
}

#[test]
fn bias_grads() {
    let mut rng = rng();
    let mut store = ParamStore::new();
    let x = store.add("x", glorot_uniform(4, 3, &mut rng));
    let b = store.add("b", glorot_uniform(1, 3, &mut rng));
    check_param_grads(
        &mut store,
        |tape, store| {
            let xv = tape.param(store, x);
            let bv = tape.param(store, b);
            let y = tape.add_bias(xv, bv);
            let z = tape.tanh(y);
            tape.mean_all(z)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn concat_narrow_grads() {
    let mut rng = rng();
    let mut store = ParamStore::new();
    let a = store.add("a", glorot_uniform(3, 2, &mut rng));
    let b = store.add("b", glorot_uniform(3, 3, &mut rng));
    check_param_grads(
        &mut store,
        |tape, store| {
            let av = tape.param(store, a);
            let bv = tape.param(store, b);
            let cat = tape.concat_cols(av, bv);
            let left = tape.narrow_cols(cat, 1, 3);
            let y = tape.sigmoid(left);
            tape.mean_all(y)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn gather_grads() {
    let mut rng = rng();
    let mut store = ParamStore::new();
    let x = store.add("x", glorot_uniform(5, 2, &mut rng));
    let idx = Rc::new(vec![0u32, 3, 3, 1]);
    check_param_grads(
        &mut store,
        |tape, store| {
            let xv = tape.param(store, x);
            let g = tape.gather_rows(xv, Rc::clone(&idx));
            let y = tape.tanh(g);
            tape.mean_all(y)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn lin_comb_grads() {
    let mut rng = rng();
    let mut store = ParamStore::new();
    let a = store.add("a", glorot_uniform(2, 2, &mut rng));
    let b = store.add("b", glorot_uniform(2, 2, &mut rng));
    let c = store.add("c", glorot_uniform(2, 2, &mut rng));
    check_param_grads(
        &mut store,
        |tape, store| {
            let av = tape.param(store, a);
            let bv = tape.param(store, b);
            let cv = tape.param(store, c);
            let y = tape.lin_comb(&[(0.5, av), (0.3, bv), (0.2, cv)]);
            let z = tape.tanh(y);
            tape.mean_all(z)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn softmax_xent_grads() {
    let mut rng = rng();
    let mut store = ParamStore::new();
    let logits = store.add("logits", glorot_uniform(6, 3, &mut rng));
    let labels = Rc::new(vec![0u32, 1, 2, 0, 2, 1]);
    check_param_grads(
        &mut store,
        |tape, store| {
            let z = tape.param(store, logits);
            tape.softmax_cross_entropy(z, Rc::clone(&labels))
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn sum_all_grads() {
    let mut rng = rng();
    let mut store = ParamStore::new();
    let a = store.add("a", glorot_uniform(2, 4, &mut rng));
    check_param_grads(
        &mut store,
        |tape, store| {
            let av = tape.param(store, a);
            let y = tape.tanh(av);
            let s = tape.sum_all(y);
            tape.scale(s, 0.1)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

/// A full GCN step `σ(Ã·X·W + b)` followed by a classification loss —
/// the composite every model layer is built from.
#[test]
fn gcn_step_composite_grads() {
    let adj = Rc::new(dgnn_tensor::normalized_laplacian(
        &Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 4)]),
        true,
    ));
    let mut rng = rng();
    let mut store = ParamStore::new();
    let x = store.add("x", glorot_uniform(5, 3, &mut rng));
    let w = store.add("w", glorot_uniform(3, 2, &mut rng));
    let b = store.add("b", glorot_uniform(1, 2, &mut rng));
    let labels = Rc::new(vec![0u32, 1, 0, 1, 0]);
    check_param_grads(
        &mut store,
        |tape, store| {
            let xv = tape.param(store, x);
            let wv = tape.param(store, w);
            let bv = tape.param(store, b);
            let agg = tape.spmm(Rc::clone(&adj), xv);
            let lin = tape.matmul(agg, wv);
            let pre = tape.add_bias(lin, bv);
            let act = tape.relu(pre);
            tape.softmax_cross_entropy(act, Rc::clone(&labels))
        },
        EPS,
        TOL,
    )
    .unwrap();
}

/// An LSTM-style gate block exercising the narrow/sigmoid/tanh/hadamard
/// composite used by the CD-GCN and EvolveGCN temporal components.
#[test]
fn lstm_gate_composite_grads() {
    let mut rng = rng();
    let mut store = ParamStore::new();
    let x = store.add("x", glorot_uniform(3, 2, &mut rng));
    let wx = store.add("wx", glorot_uniform(2, 8, &mut rng));
    let h0 = store.add("h0", glorot_uniform(3, 2, &mut rng));
    let wh = store.add("wh", glorot_uniform(2, 8, &mut rng));
    let bias = store.add("bias", glorot_uniform(1, 8, &mut rng));
    check_param_grads(
        &mut store,
        |tape, store| {
            let xv = tape.param(store, x);
            let wxv = tape.param(store, wx);
            let h0v = tape.param(store, h0);
            let whv = tape.param(store, wh);
            let bv = tape.param(store, bias);
            let gx = tape.matmul(xv, wxv);
            let gh = tape.matmul(h0v, whv);
            let pre0 = tape.add(gx, gh);
            let pre = tape.add_bias(pre0, bv);
            let i = tape.narrow_cols(pre, 0, 2);
            let f = tape.narrow_cols(pre, 2, 2);
            let g = tape.narrow_cols(pre, 4, 2);
            let o = tape.narrow_cols(pre, 6, 2);
            let ig = tape.sigmoid(i);
            let fg = tape.sigmoid(f);
            let gg = tape.tanh(g);
            let og = tape.sigmoid(o);
            let c_half = tape.hadamard(fg, gg);
            let c_new0 = tape.hadamard(ig, gg);
            let c_new = tape.add(c_new0, c_half);
            let ct = tape.tanh(c_new);
            let h = tape.hadamard(og, ct);
            tape.mean_all(h)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

/// Input-leaf gradients (the block-carry path of gradient checkpointing).
#[test]
fn input_leaf_grads() {
    let mut rng = rng();
    let x = glorot_uniform(3, 3, &mut rng);
    let w = glorot_uniform(3, 2, &mut rng);
    check_input_grad(
        &x,
        |tape, xin| {
            let xv = tape.input(xin);
            let wv = tape.constant(w.clone());
            let y = tape.matmul(xv, wv);
            let z = tape.tanh(y);
            (xv, tape.mean_all(z))
        },
        EPS,
        TOL,
    )
    .unwrap();
}

/// Seeded backward equals backward through an explicitly stitched graph:
/// the correctness core of cross-tape checkpointing.
#[test]
fn two_tape_stitching_matches_single_tape() {
    let mut rng = rng();
    let x0 = glorot_uniform(4, 3, &mut rng);
    let w1 = glorot_uniform(3, 3, &mut rng);
    let w2 = glorot_uniform(3, 2, &mut rng);

    // Single tape reference.
    let mut full = Tape::new();
    let x = full.input(x0.clone());
    let w1v = full.constant(w1.clone());
    let w2v = full.constant(w2.clone());
    let h_pre = full.matmul(x, w1v);
    let h = full.tanh(h_pre);
    let y_pre = full.matmul(h, w2v);
    let y = full.sigmoid(y_pre);
    let loss = full.mean_all(y);
    full.backward_scalar(loss);
    let ref_dx = full.grad(x).unwrap().clone();

    // Two tapes stitched at h.
    let mut t1 = Tape::new();
    let x1 = t1.input(x0.clone());
    let w1c = t1.constant(w1.clone());
    let h1_pre = t1.matmul(x1, w1c);
    let h1 = t1.tanh(h1_pre);
    let h_val = t1.value(h1).clone();

    let mut t2 = Tape::new();
    let h2 = t2.input(h_val);
    let w2c = t2.constant(w2);
    let y2_pre = t2.matmul(h2, w2c);
    let y2 = t2.sigmoid(y2_pre);
    let loss2 = t2.mean_all(y2);
    t2.backward_scalar(loss2);
    let dh = t2.grad(h2).unwrap().clone();

    t1.backward(&[(h1, dh)]);
    let stitched_dx = t1.grad(x1).unwrap().clone();

    assert!(stitched_dx.approx_eq(&ref_dx, 1e-6));
}
