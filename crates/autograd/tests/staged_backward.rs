//! Property tests for the staged-backward protocol: running `backward`
//! several times with partitioned seed sets must equal one full backward,
//! provided later stages only seed nodes untouched by earlier sweeps —
//! the invariant the distributed trainers rely on.

use dgnn_autograd::{ParamStore, Tape};
use dgnn_tensor::init::glorot_uniform;
use dgnn_tensor::Dense;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds two disconnected chains x -> a1 -> a2 and y -> b1 -> b2 sharing a
/// parameter w, mirroring the layer-cut structure of the trainers.
fn two_chains(
    tape: &mut Tape,
    store: &ParamStore,
    w: dgnn_autograd::ParamId,
    x0: &Dense,
    y0: &Dense,
) -> (dgnn_autograd::Var, dgnn_autograd::Var) {
    let wv = tape.param(store, w);
    let x = tape.input(x0.clone());
    let a1 = tape.matmul(x, wv);
    let a2 = tape.tanh(a1);
    let y = tape.input(y0.clone());
    let b1 = tape.matmul(y, wv);
    let b2 = tape.sigmoid(b1);
    (a2, b2)
}

#[test]
fn staged_equals_single_sweep() {
    let mut rng = StdRng::seed_from_u64(5);
    let x0 = glorot_uniform(3, 4, &mut rng);
    let y0 = glorot_uniform(2, 4, &mut rng);
    let w0 = glorot_uniform(4, 4, &mut rng);
    let ga = Dense::full(3, 4, 0.3);
    let gb = Dense::full(2, 4, -0.7);

    // Single call with both seeds.
    let mut store = ParamStore::new();
    let w = store.add("w", w0.clone());
    let mut tape = Tape::new();
    let (a2, b2) = two_chains(&mut tape, &store, w, &x0, &y0);
    tape.backward(&[(a2, ga.clone()), (b2, gb.clone())]);
    tape.accumulate_param_grads(&mut store);
    let reference = store.grads_flat();

    // Two staged calls.
    let mut store2 = ParamStore::new();
    let w2 = store2.add("w", w0);
    let mut tape2 = Tape::new();
    let (a2, b2) = two_chains(&mut tape2, &store2, w2, &x0, &y0);
    tape2.backward(&[(a2, ga)]);
    tape2.backward(&[(b2, gb)]);
    tape2.accumulate_param_grads(&mut store2);
    let staged = store2.grads_flat();

    for (r, s) in reference.iter().zip(&staged) {
        assert!((r - s).abs() < 1e-6, "staged backward diverges: {r} vs {s}");
    }
}

#[test]
#[should_panic(expected = "already propagated")]
fn reseeding_a_propagated_node_panics() {
    let mut tape = Tape::new();
    let x = tape.input(Dense::ones(2, 2));
    let y = tape.tanh(x);
    tape.backward(&[(y, Dense::ones(2, 2))]);
    // y was propagated in the first sweep; a second seed must be rejected
    // (silent double-propagation is the bug class this guards against).
    tape.backward(&[(y, Dense::ones(2, 2))]);
}

#[test]
fn concat_rows_gradcheck() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut store = ParamStore::new();
    let a = store.add("a", glorot_uniform(2, 3, &mut rng));
    let b = store.add("b", glorot_uniform(4, 3, &mut rng));
    dgnn_autograd::gradcheck::check_param_grads(
        &mut store,
        |tape, store| {
            let av = tape.param(store, a);
            let bv = tape.param(store, b);
            let stacked = tape.concat_rows(&[av, bv]);
            let y = tape.tanh(stacked);
            tape.mean_all(y)
        },
        1e-2,
        2e-2,
    )
    .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Leaves keep accumulating across stages: grads of a shared parameter
    /// equal the sum of per-stage contributions in any stage order.
    #[test]
    fn stage_order_does_not_matter(
        xs in proptest::collection::vec(-2.0f32..2.0, 12),
        ys in proptest::collection::vec(-2.0f32..2.0, 8),
        swap in any::<bool>(),
    ) {
        let x0 = Dense::from_vec(3, 4, xs);
        let y0 = Dense::from_vec(2, 4, ys);
        let w0 = Dense::from_fn(4, 4, |r, c| ((r * 4 + c) as f32 * 0.1) - 0.7);
        let ga = Dense::full(3, 4, 1.0);
        let gb = Dense::full(2, 4, 1.0);

        let run = |first_a: bool| {
            let mut store = ParamStore::new();
            let w = store.add("w", w0.clone());
            let mut tape = Tape::new();
            let (a2, b2) = two_chains(&mut tape, &store, w, &x0, &y0);
            if first_a {
                tape.backward(&[(a2, ga.clone())]);
                tape.backward(&[(b2, gb.clone())]);
            } else {
                tape.backward(&[(b2, gb.clone())]);
                tape.backward(&[(a2, ga.clone())]);
            }
            tape.accumulate_param_grads(&mut store);
            store.grads_flat()
        };
        let fwd = run(true);
        let rev = run(!swap);
        for (f, r) in fwd.iter().zip(&rev) {
            prop_assert!((f - r).abs() < 1e-5);
        }
    }
}
