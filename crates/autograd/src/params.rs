//! Named parameter storage shared by the models and the optimizers.
//!
//! Every rank of the distributed trainer holds a replica of the same
//! `ParamStore`; gradient all-reduce operates on the flattened gradient
//! vector exposed by [`ParamStore::grads_flat`].

use dgnn_tensor::Dense;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

struct Entry {
    name: String,
    value: Dense,
    grad: Dense,
}

/// A flat store of named parameter matrices and their gradients.
#[derive(Default)]
pub struct ParamStore {
    entries: Vec<Entry>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Registers a parameter with an initial value; returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Dense) -> ParamId {
        let (r, c) = value.shape();
        self.entries.push(Entry {
            name: name.into(),
            grad: Dense::zeros(r, c),
            value,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids of all parameters in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// The name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Looks a parameter up by its registered name (checkpoint import).
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .map(ParamId)
    }

    /// Immutable value.
    pub fn value(&self, id: ParamId) -> &Dense {
        &self.entries[id.0].value
    }

    /// Mutable value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Dense {
        &mut self.entries[id.0].value
    }

    /// Immutable gradient.
    pub fn grad(&self, id: ParamId) -> &Dense {
        &self.entries[id.0].grad
    }

    /// Accumulates `g` into the gradient of `id`.
    pub fn add_grad(&mut self, id: ParamId, g: &Dense) {
        self.entries[id.0].grad.add_assign(g);
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            let (r, c) = e.value.shape();
            e.grad = Dense::zeros(r, c);
        }
    }

    /// Total number of scalar parameters.
    pub fn total_elems(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Flattens all gradients into one vector (all-reduce payload).
    pub fn grads_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.total_elems());
        for e in &self.entries {
            out.extend_from_slice(e.grad.data());
        }
        out
    }

    /// Overwrites all gradients from a flat vector produced by
    /// [`ParamStore::grads_flat`] (after an all-reduce).
    pub fn set_grads_from_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.total_elems(),
            "flat gradient length mismatch"
        );
        let mut offset = 0;
        for e in &mut self.entries {
            let n = e.grad.len();
            e.grad.data_mut().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
    }

    /// Flattens all values (parameter broadcast payload).
    pub fn values_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.total_elems());
        for e in &self.entries {
            out.extend_from_slice(e.value.data());
        }
        out
    }

    /// Overwrites all values from a flat vector.
    pub fn set_values_from_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.total_elems(), "flat value length mismatch");
        let mut offset = 0;
        for e in &mut self.entries {
            let n = e.value.len();
            e.value
                .data_mut()
                .copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
    }

    /// L2 norm of the full gradient vector (for logging / clipping).
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.add("w", Dense::ones(2, 3));
        assert_eq!(store.name(id), "w");
        assert_eq!(store.value(id).shape(), (2, 3));
        assert_eq!(store.grad(id).sum(), 0.0);
        assert_eq!(store.total_elems(), 6);
    }

    #[test]
    fn id_of_finds_registered_names() {
        let mut store = ParamStore::new();
        let a = store.add("gcn0.w", Dense::zeros(2, 2));
        let b = store.add("gcn0.b", Dense::zeros(1, 2));
        assert_eq!(store.id_of("gcn0.w"), Some(a));
        assert_eq!(store.id_of("gcn0.b"), Some(b));
        assert_eq!(store.id_of("missing"), None);
    }

    #[test]
    fn grad_accumulation_and_zero() {
        let mut store = ParamStore::new();
        let id = store.add("w", Dense::zeros(1, 2));
        store.add_grad(id, &Dense::ones(1, 2));
        store.add_grad(id, &Dense::ones(1, 2));
        assert_eq!(store.grad(id).sum(), 4.0);
        store.zero_grad();
        assert_eq!(store.grad(id).sum(), 0.0);
    }

    #[test]
    fn flat_roundtrip() {
        let mut store = ParamStore::new();
        let a = store.add("a", Dense::from_vec(1, 2, vec![1.0, 2.0]));
        let b = store.add("b", Dense::from_vec(2, 1, vec![3.0, 4.0]));
        let flat = store.values_flat();
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0]);
        store.set_values_from_flat(&[9.0, 8.0, 7.0, 6.0]);
        assert_eq!(store.value(a).data(), &[9.0, 8.0]);
        assert_eq!(store.value(b).data(), &[7.0, 6.0]);
        store.add_grad(a, &Dense::ones(1, 2));
        let gflat = store.grads_flat();
        assert_eq!(gflat, vec![1.0, 1.0, 0.0, 0.0]);
        store.set_grads_from_flat(&[0.5; 4]);
        assert_eq!(store.grad(b).data(), &[0.5, 0.5]);
    }

    #[test]
    fn grad_norm_is_l2() {
        let mut store = ParamStore::new();
        let a = store.add("a", Dense::zeros(1, 2));
        store.add_grad(a, &Dense::from_vec(1, 2, vec![3.0, 4.0]));
        assert!((store.grad_norm() - 5.0).abs() < 1e-6);
    }
}
