//! Finite-difference gradient checking used by the test suites of this
//! crate and of `dgnn-models`.

use dgnn_tensor::Dense;

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// Outcome of a finite-difference comparison for one parameter coordinate.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckFailure {
    /// Parameter index in the store.
    pub param: usize,
    /// Flat coordinate inside the parameter matrix.
    pub coord: usize,
    /// Reverse-mode gradient.
    pub analytic: f32,
    /// Central finite difference.
    pub numeric: f32,
}

/// Checks reverse-mode gradients of a scalar function against central finite
/// differences, coordinate by coordinate.
///
/// `build` must construct the full forward expression on the given tape from
/// the current parameter values and return the scalar (`1x1`) loss variable.
/// Every parameter coordinate is perturbed by ±`eps`; the check passes when
/// `|analytic - numeric| <= tol * (1 + |numeric|)` everywhere.
///
/// f32 arithmetic makes finite differences noisy; callers should use
/// `eps ~ 1e-2` and `tol ~ 2e-2` with O(1)-scaled inputs.
pub fn check_param_grads(
    store: &mut ParamStore,
    mut build: impl FnMut(&mut Tape, &ParamStore) -> Var,
    eps: f32,
    tol: f32,
) -> Result<(), GradCheckFailure> {
    // Analytic pass.
    store.zero_grad();
    let mut tape = Tape::new();
    let loss = build(&mut tape, store);
    assert_eq!(tape.value(loss).shape(), (1, 1), "loss must be scalar");
    tape.backward_scalar(loss);
    tape.accumulate_param_grads(store);
    let analytic: Vec<Vec<f32>> = store
        .ids()
        .map(|id| store.grad(id).data().to_vec())
        .collect();

    // Numeric pass, one coordinate at a time.
    let ids: Vec<ParamId> = store.ids().collect();
    for (pi, &id) in ids.iter().enumerate() {
        let n = store.value(id).len();
        for k in 0..n {
            let orig = store.value(id).data()[k];

            store.value_mut(id).data_mut()[k] = orig + eps;
            let mut t1 = Tape::new();
            let l1 = build(&mut t1, store);
            let up = t1.value(l1).get(0, 0);

            store.value_mut(id).data_mut()[k] = orig - eps;
            let mut t2 = Tape::new();
            let l2 = build(&mut t2, store);
            let down = t2.value(l2).get(0, 0);

            store.value_mut(id).data_mut()[k] = orig;

            let numeric = (up - down) / (2.0 * eps);
            let a = analytic[pi][k];
            if (a - numeric).abs() > tol * (1.0 + numeric.abs()) {
                return Err(GradCheckFailure {
                    param: pi,
                    coord: k,
                    analytic: a,
                    numeric,
                });
            }
        }
    }
    Ok(())
}

/// Checks the gradient reaching a differentiable *input* leaf against
/// central finite differences. `build` receives the tape and the current
/// input value and must return `(input_var, loss_var)`.
pub fn check_input_grad(
    input: &Dense,
    mut build: impl FnMut(&mut Tape, Dense) -> (Var, Var),
    eps: f32,
    tol: f32,
) -> Result<(), GradCheckFailure> {
    let mut tape = Tape::new();
    let (x, loss) = build(&mut tape, input.clone());
    tape.backward_scalar(loss);
    let analytic = tape
        .grad(x)
        .expect("input should receive a gradient")
        .clone();

    for k in 0..input.len() {
        let mut up_in = input.clone();
        up_in.data_mut()[k] += eps;
        let mut t1 = Tape::new();
        let (_, l1) = build(&mut t1, up_in);
        let up = t1.value(l1).get(0, 0);

        let mut down_in = input.clone();
        down_in.data_mut()[k] -= eps;
        let mut t2 = Tape::new();
        let (_, l2) = build(&mut t2, down_in);
        let down = t2.value(l2).get(0, 0);

        let numeric = (up - down) / (2.0 * eps);
        let a = analytic.data()[k];
        if (a - numeric).abs() > tol * (1.0 + numeric.abs()) {
            return Err(GradCheckFailure {
                param: usize::MAX,
                coord: k,
                analytic: a,
                numeric,
            });
        }
    }
    Ok(())
}
