//! First-order optimizers over a [`ParamStore`].

use dgnn_tensor::Dense;

use crate::params::ParamStore;

/// A gradient-descent style optimizer.
pub trait Optimizer {
    /// Applies one update step using the gradients currently in `store`,
    /// then leaves the gradients untouched (callers zero them).
    fn step(&mut self, store: &mut ParamStore);
}

/// Stochastic gradient descent with optional momentum and weight decay.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f32,
    velocity: Vec<Dense>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        if self.velocity.len() != ids.len() {
            self.velocity = ids
                .iter()
                .map(|&id| {
                    let (r, c) = store.value(id).shape();
                    Dense::zeros(r, c)
                })
                .collect();
        }
        for (slot, id) in ids.into_iter().enumerate() {
            let mut g = store.grad(id).clone();
            if self.weight_decay != 0.0 {
                g.axpy(self.weight_decay, store.value(id));
            }
            if self.momentum != 0.0 {
                let v = &mut self.velocity[slot];
                v.scale_assign(self.momentum);
                v.add_assign(&g);
                g = v.clone();
            }
            store.value_mut(id).axpy(-self.lr, &g);
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u32,
    m: Vec<Dense>,
    v: Vec<Dense>,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        if self.m.len() != ids.len() {
            let zeros = |store: &ParamStore| {
                ids.iter()
                    .map(|&id| {
                        let (r, c) = store.value(id).shape();
                        Dense::zeros(r, c)
                    })
                    .collect::<Vec<_>>()
            };
            self.m = zeros(store);
            self.v = zeros(store);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (slot, id) in ids.into_iter().enumerate() {
            let g = store.grad(id).clone();
            let m = &mut self.m[slot];
            m.scale_assign(self.beta1);
            m.axpy(1.0 - self.beta1, &g);
            let v = &mut self.v[slot];
            v.scale_assign(self.beta2);
            let g2 = g.hadamard(&g);
            v.axpy(1.0 - self.beta2, &g2);
            let update = Dense::from_fn(g.rows(), g.cols(), |r, c| {
                let mh = m.get(r, c) / bc1;
                let vh = v.get(r, c) / bc2;
                mh / (vh.sqrt() + self.eps)
            });
            store.value_mut(id).axpy(-self.lr, &update);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_store() -> (ParamStore, crate::params::ParamId) {
        let mut store = ParamStore::new();
        let id = store.add("x", Dense::from_vec(1, 1, vec![10.0]));
        (store, id)
    }

    /// Gradient of f(x) = x² is 2x; both optimizers must shrink |x|.
    #[test]
    fn sgd_minimises_quadratic() {
        let (mut store, id) = quadratic_store();
        let mut opt = Sgd::new(0.1);
        for _ in 0..50 {
            store.zero_grad();
            let x = store.value(id).get(0, 0);
            store.add_grad(id, &Dense::from_vec(1, 1, vec![2.0 * x]));
            opt.step(&mut store);
        }
        assert!(store.value(id).get(0, 0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let (mut store, id) = quadratic_store();
        let mut opt = Sgd::with_momentum(0.02, 0.9);
        for _ in 0..300 {
            store.zero_grad();
            let x = store.value(id).get(0, 0);
            store.add_grad(id, &Dense::from_vec(1, 1, vec![2.0 * x]));
            opt.step(&mut store);
        }
        assert!(store.value(id).get(0, 0).abs() < 0.05);
    }

    #[test]
    fn adam_minimises_quadratic() {
        let (mut store, id) = quadratic_store();
        let mut opt = Adam::new(0.5);
        for _ in 0..200 {
            store.zero_grad();
            let x = store.value(id).get(0, 0);
            store.add_grad(id, &Dense::from_vec(1, 1, vec![2.0 * x]));
            opt.step(&mut store);
        }
        assert!(store.value(id).get(0, 0).abs() < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let (mut store, id) = quadratic_store();
        let mut opt = Sgd::new(0.1);
        opt.weight_decay = 0.5;
        store.zero_grad();
        opt.step(&mut store);
        // x' = x - lr * wd * x = 10 * (1 - 0.05)
        assert!((store.value(id).get(0, 0) - 9.5).abs() < 1e-6);
    }
}
