//! # dgnn-autograd
//!
//! Tape-based reverse-mode automatic differentiation over `dgnn-tensor`
//! matrices — the stand-in for PyTorch autograd in this reproduction.
//!
//! The engine is deliberately scoped to what dynamic-GNN training needs:
//! dense matmul, sparse-constant SpMM, element-wise ops, activations, column
//! concat/slice (LSTM gates, CD-GCN skip connections), row gather
//! (link-prediction lookups), linear combinations (M-product), and fused
//! softmax cross-entropy. Gradient checkpointing and distributed
//! redistribution are realised *between* tapes by the trainers in
//! `dgnn-core`: block outputs leave one tape as plain matrices and re-enter
//! the next as [`Tape::input`] leaves, and incoming gradients are injected
//! as [`Tape::backward`] seeds.

pub mod gradcheck;
pub mod optim;
pub mod params;
pub mod tape;

pub use optim::{Adam, Optimizer, Sgd};
pub use params::{ParamId, ParamStore};
pub use tape::{Tape, Var};
