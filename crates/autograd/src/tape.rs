//! A tape (Wengert list) based reverse-mode automatic-differentiation engine
//! over [`Dense`] matrices, with sparse-constant SpMM for GCN aggregation.
//!
//! The original system relies on PyTorch autograd; this module reproduces the
//! subset of it the three dynamic-GNN architectures need. One `Tape` holds
//! one forward expression graph; [`Tape::backward`] seeds one or more output
//! variables with gradients and accumulates into every reachable node.
//! Cross-tape boundaries (gradient checkpointing blocks, all-to-all
//! redistributions) are handled by the trainers: block outputs are extracted
//! as plain matrices and re-enter the next tape as [`Tape::input`] leaves,
//! while incoming gradients are injected as extra seeds.

use std::rc::Rc;

use dgnn_tensor::{Csr, Dense};

use crate::params::{ParamId, ParamStore};

/// A handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// The differentiable operations recorded on the tape.
enum Op {
    /// Input, constant, or parameter copy.
    Leaf,
    /// Dense matrix product `a * b`.
    MatMul(Var, Var),
    /// Sparse-constant × dense product `A * x` (the GCN aggregation).
    Spmm { a: Rc<Csr>, x: Var },
    /// Element-wise sum.
    Add(Var, Var),
    /// Element-wise difference.
    Sub(Var, Var),
    /// Element-wise product.
    Hadamard(Var, Var),
    /// Row-broadcast bias addition: `x + 1ᵀ·bias`.
    AddBias { x: Var, bias: Var },
    /// Scalar multiple.
    Scale { x: Var, alpha: f32 },
    /// Logistic sigmoid.
    Sigmoid(Var),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Rectified linear unit.
    Relu(Var),
    /// Horizontal concatenation `[a | b]`.
    ConcatCols(Var, Var),
    /// Vertical concatenation (row stacking) of chunks.
    ConcatRows(Vec<Var>),
    /// Column slice copy.
    NarrowCols { x: Var, start: usize },
    /// Row gather `out[i] = x[idx[i]]`.
    GatherRows { x: Var, idx: Rc<Vec<u32>> },
    /// Linear combination `Σ cᵢ · xᵢ` (M-product rows, residual sums).
    LinComb(Vec<(f32, Var)>),
    /// Mean over all elements, producing a `1x1` value.
    MeanAll(Var),
    /// Sum over all elements, producing a `1x1` value.
    SumAll(Var),
    /// Fused softmax + cross-entropy against integer labels; value is the
    /// `1x1` mean loss and `probs` caches the softmax for the backward pass.
    SoftmaxXent {
        logits: Var,
        labels: Rc<Vec<u32>>,
        probs: Dense,
    },
}

struct Node {
    op: Op,
    value: Dense,
    requires_grad: bool,
    propagated: bool,
}

/// A single-use forward/backward expression tape.
///
/// `backward` may be called several times on one tape with different seed
/// sets — the staged-backward protocol of the distributed trainers, where
/// gradient all-to-alls are interleaved with partial sweeps. A node is
/// propagated at most once; seeding an already-propagated node is a bug and
/// panics.
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Dense>>,
    param_bindings: Vec<(Var, ParamId)>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            grads: Vec::new(),
            param_bindings: Vec::new(),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total `f32` elements held by node values — the "activation memory" of
    /// this tape, used by the memory-accounting cross-checks.
    pub fn value_elems(&self) -> usize {
        self.nodes.iter().map(|n| n.value.len()).sum()
    }

    fn push(&mut self, op: Op, value: Dense, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            op,
            value,
            requires_grad,
            propagated: false,
        });
        self.grads.push(None);
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Dense {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of `v`, if any was produced by `backward`.
    pub fn grad(&self, v: Var) -> Option<&Dense> {
        self.grads[v.0].as_ref()
    }

    /// Records a non-differentiable constant.
    pub fn constant(&mut self, value: Dense) -> Var {
        self.push(Op::Leaf, value, false)
    }

    /// Records a differentiable input leaf (block-carry states, activations
    /// arriving from another rank). Its gradient is available after
    /// `backward` via [`Tape::grad`].
    pub fn input(&mut self, value: Dense) -> Var {
        self.push(Op::Leaf, value, true)
    }

    /// Records a leaf bound to a parameter in `store`. After `backward`,
    /// call [`Tape::accumulate_param_grads`] to flush gradients into the
    /// store.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.push(Op::Leaf, store.value(id).clone(), true);
        self.param_bindings.push((v, id));
        v
    }

    /// Dense matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(Op::MatMul(a, b), value, rg)
    }

    /// Sparse-constant × dense product (GCN aggregation `Ã · X`).
    pub fn spmm(&mut self, a: Rc<Csr>, x: Var) -> Var {
        let value = a.spmm(self.value(x));
        let rg = self.rg(x);
        self.push(Op::Spmm { a, x }, value, rg)
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(Op::Add(a, b), value, rg)
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(Op::Sub(a, b), value, rg)
    }

    /// Element-wise product.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).hadamard(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(Op::Hadamard(a, b), value, rg)
    }

    /// Adds a `1 x C` bias row to every row of `x`.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let value = self.value(x).add_row_broadcast(self.value(bias));
        let rg = self.rg(x) || self.rg(bias);
        self.push(Op::AddBias { x, bias }, value, rg)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, x: Var, alpha: f32) -> Var {
        let value = self.value(x).scale(alpha);
        let rg = self.rg(x);
        self.push(Op::Scale { x, alpha }, value, rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let value = self.value(x).map(|v| 1.0 / (1.0 + (-v).exp()));
        let rg = self.rg(x);
        self.push(Op::Sigmoid(x), value, rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let value = self.value(x).map(f32::tanh);
        let rg = self.rg(x);
        self.push(Op::Tanh(x), value, rg)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let value = self.value(x).map(|v| v.max(0.0));
        let rg = self.rg(x);
        self.push(Op::Relu(x), value, rg)
    }

    /// Horizontal concatenation `[a | b]` (CD-GCN skip connection).
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).concat_cols(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(Op::ConcatCols(a, b), value, rg)
    }

    /// Vertical (row) concatenation of chunks — reassembly of vertex-chunk
    /// row blocks in the vertex-partitioned and hybrid schemes.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let refs: Vec<&Dense> = parts.iter().map(|&v| self.value(v)).collect();
        let value = Dense::vstack(&refs);
        let rg = parts.iter().any(|&v| self.rg(v));
        self.push(Op::ConcatRows(parts.to_vec()), value, rg)
    }

    /// Column slice `x[:, start..start+len]` (LSTM gate split).
    pub fn narrow_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let value = self.value(x).narrow_cols(start, len);
        let rg = self.rg(x);
        let _ = len;
        self.push(Op::NarrowCols { x, start }, value, rg)
    }

    /// Row gather (embedding lookup for link-prediction endpoints).
    pub fn gather_rows(&mut self, x: Var, idx: Rc<Vec<u32>>) -> Var {
        let value = self.value(x).gather_rows(&idx);
        let rg = self.rg(x);
        self.push(Op::GatherRows { x, idx }, value, rg)
    }

    /// Linear combination `Σ cᵢ · xᵢ`; all terms must share a shape.
    pub fn lin_comb(&mut self, terms: &[(f32, Var)]) -> Var {
        assert!(!terms.is_empty(), "lin_comb of nothing");
        let shape = self.value(terms[0].1).shape();
        let mut value = Dense::zeros(shape.0, shape.1);
        let mut rg = false;
        for &(c, v) in terms {
            value.axpy(c, self.value(v));
            rg |= self.rg(v);
        }
        self.push(Op::LinComb(terms.to_vec()), value, rg)
    }

    /// Mean over all elements (`1x1` output).
    pub fn mean_all(&mut self, x: Var) -> Var {
        let value = Dense::from_vec(1, 1, vec![self.value(x).mean()]);
        let rg = self.rg(x);
        self.push(Op::MeanAll(x), value, rg)
    }

    /// Sum over all elements (`1x1` output).
    pub fn sum_all(&mut self, x: Var) -> Var {
        let value = Dense::from_vec(1, 1, vec![self.value(x).sum()]);
        let rg = self.rg(x);
        self.push(Op::SumAll(x), value, rg)
    }

    /// Fused mean softmax cross-entropy of `logits` (`S x C`) against integer
    /// `labels` (length `S`, entries `< C`). Returns a `1x1` loss node.
    ///
    /// The per-row softmax runs row-parallel on the intra-rank pool (each
    /// row is self-contained), then the loss accumulates serially in
    /// ascending row order — the same f64 addition sequence as the serial
    /// kernel, so the loss is bit-identical at every thread count.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: Rc<Vec<u32>>) -> Var {
        let z = self.value(logits);
        let (s, c) = z.shape();
        assert_eq!(labels.len(), s, "labels/logits row mismatch");
        let mut probs = Dense::zeros(s, c);
        dgnn_tensor::pool::par_rows(
            probs.data_mut(),
            c,
            s.saturating_mul(c).saturating_mul(8),
            |r0, block| {
                for (dr, prow) in block.chunks_mut(c).enumerate() {
                    let row = z.row(r0 + dr);
                    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut denom = 0.0f32;
                    for (p, &v) in prow.iter_mut().zip(row) {
                        let e = (v - max).exp();
                        *p = e;
                        denom += e;
                    }
                    for p in prow {
                        *p /= denom;
                    }
                }
            },
        );
        let mut loss = 0.0f64;
        for (r, &label) in labels.iter().enumerate() {
            let label = label as usize;
            assert!(label < c, "label out of range");
            loss -= f64::from(probs.get(r, label).max(1e-12).ln());
        }
        let value = Dense::from_vec(1, 1, vec![(loss / s as f64) as f32]);
        let rg = self.rg(logits);
        self.push(
            Op::SoftmaxXent {
                logits,
                labels,
                probs,
            },
            value,
            rg,
        )
    }

    /// Runs reverse-mode accumulation from the given `(variable, gradient)`
    /// seeds. A plain scalar loss is seeded with `Dense::ones(1, 1)`.
    ///
    /// Gradients accumulate across repeated calls on the same tape only if
    /// the caller seeds disjoint sinks; typical use is a single call.
    pub fn backward(&mut self, seeds: &[(Var, Dense)]) {
        for (v, g) in seeds {
            assert_eq!(
                self.nodes[v.0].value.shape(),
                g.shape(),
                "seed gradient shape mismatch"
            );
            assert!(
                !self.nodes[v.0].propagated,
                "seeding a node that was already propagated in an earlier \
                 backward stage"
            );
            match &mut self.grads[v.0] {
                Some(acc) => acc.add_assign(g),
                slot => *slot = Some(g.clone()),
            }
        }
        for i in (0..self.nodes.len()).rev() {
            if !self.nodes[i].requires_grad || self.nodes[i].propagated {
                continue;
            }
            let Some(g) = self.grads[i].take() else {
                continue;
            };
            self.nodes[i].propagated = true;
            self.propagate(i, &g);
            self.grads[i] = Some(g);
        }
    }

    /// Convenience: backward from a scalar loss node with unit seed.
    pub fn backward_scalar(&mut self, loss: Var) {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be 1x1");
        self.backward(&[(loss, Dense::ones(1, 1))]);
    }

    fn accumulate(&mut self, v: Var, delta: Dense) {
        if !self.nodes[v.0].requires_grad {
            return;
        }
        match &mut self.grads[v.0] {
            Some(acc) => acc.add_assign(&delta),
            slot => *slot = Some(delta),
        }
    }

    fn propagate(&mut self, i: usize, g: &Dense) {
        // `g` is the output gradient of node `i`; dispatch per op. Inputs of
        // a node always precede it on the tape, so accumulation is safe.
        match &self.nodes[i].op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let (a, b) = (*a, *b);
                let da = g.matmul_transb(self.value(b));
                let db = self.value(a).matmul_transa(g);
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::Spmm { a, x } => {
                let x = *x;
                let dx = a.spmm_transa(g);
                self.accumulate(x, dx);
            }
            Op::Add(a, b) => {
                let (a, b) = (*a, *b);
                self.accumulate(a, g.clone());
                self.accumulate(b, g.clone());
            }
            Op::Sub(a, b) => {
                let (a, b) = (*a, *b);
                self.accumulate(a, g.clone());
                self.accumulate(b, g.scale(-1.0));
            }
            Op::Hadamard(a, b) => {
                let (a, b) = (*a, *b);
                let da = g.hadamard(self.value(b));
                let db = g.hadamard(self.value(a));
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::AddBias { x, bias } => {
                let (x, bias) = (*x, *bias);
                self.accumulate(x, g.clone());
                self.accumulate(bias, g.sum_rows());
            }
            Op::Scale { x, alpha } => {
                let (x, alpha) = (*x, *alpha);
                self.accumulate(x, g.scale(alpha));
            }
            Op::Sigmoid(x) => {
                let x = *x;
                let y = &self.nodes[i].value;
                let dx = g.zip_map(y, |gv, yv| gv * yv * (1.0 - yv));
                self.accumulate(x, dx);
            }
            Op::Tanh(x) => {
                let x = *x;
                let y = &self.nodes[i].value;
                let dx = g.zip_map(y, |gv, yv| gv * (1.0 - yv * yv));
                self.accumulate(x, dx);
            }
            Op::Relu(x) => {
                let x = *x;
                let xin = self.value(x);
                let dx = g.zip_map(xin, |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                self.accumulate(x, dx);
            }
            Op::ConcatCols(a, b) => {
                let (a, b) = (*a, *b);
                let ca = self.value(a).cols();
                let cb = self.value(b).cols();
                let da = g.narrow_cols(0, ca);
                let db = g.narrow_cols(ca, cb);
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::ConcatRows(parts) => {
                let parts = parts.clone();
                let mut start = 0usize;
                for v in parts {
                    let rows = self.value(v).rows();
                    let dv = g.row_block(start, rows);
                    start += rows;
                    self.accumulate(v, dv);
                }
            }
            Op::NarrowCols { x, start } => {
                let (x, start) = (*x, *start);
                let cols = self.value(x).cols();
                let dx = g.pad_cols(cols, start);
                self.accumulate(x, dx);
            }
            Op::GatherRows { x, idx } => {
                let x = *x;
                let idx = Rc::clone(idx);
                let (rows, cols) = self.value(x).shape();
                let mut dx = Dense::zeros(rows, cols);
                dx.scatter_add_rows(&idx, g);
                self.accumulate(x, dx);
            }
            Op::LinComb(terms) => {
                let terms = terms.clone();
                for (c, v) in terms {
                    self.accumulate(v, g.scale(c));
                }
            }
            Op::MeanAll(x) => {
                let x = *x;
                let (rows, cols) = self.value(x).shape();
                let gs = g.get(0, 0) / (rows * cols) as f32;
                self.accumulate(x, Dense::full(rows, cols, gs));
            }
            Op::SumAll(x) => {
                let x = *x;
                let (rows, cols) = self.value(x).shape();
                self.accumulate(x, Dense::full(rows, cols, g.get(0, 0)));
            }
            Op::SoftmaxXent {
                logits,
                labels,
                probs,
            } => {
                let logits = *logits;
                let labels = Rc::clone(labels);
                let gs = g.get(0, 0);
                let s = probs.rows();
                let mut dz = probs.clone();
                for (r, &label) in labels.iter().enumerate() {
                    let cur = dz.get(r, label as usize);
                    dz.set(r, label as usize, cur - 1.0);
                }
                dz.scale_assign(gs / s as f32);
                self.accumulate(logits, dz);
            }
        }
    }

    /// Flushes gradients of parameter-bound leaves into the store
    /// (accumulating — call [`ParamStore::zero_grad`] between steps).
    pub fn accumulate_param_grads(&self, store: &mut ParamStore) {
        for &(v, id) in &self.param_bindings {
            if let Some(g) = self.grads[v.0].as_ref() {
                store.add_grad(id, g);
            }
        }
    }

    /// Consumes the tape, returning every node value, cached softmax, and
    /// gradient buffer to this thread's workspace arena
    /// ([`dgnn_tensor::workspace`]). A retired checkpoint block's scratch
    /// then backs the next block's tape instead of fresh allocations. No-op
    /// (a plain drop) when no workspace is engaged.
    pub fn recycle(self) {
        if !dgnn_tensor::workspace::is_engaged() {
            return;
        }
        for node in self.nodes {
            dgnn_tensor::workspace::recycle(node.value);
            if let Op::SoftmaxXent { probs, .. } = node.op {
                dgnn_tensor::workspace::recycle(probs);
            }
        }
        for g in self.grads.into_iter().flatten() {
            dgnn_tensor::workspace::recycle(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_backward_matches_manual() {
        // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1.
        let mut tape = Tape::new();
        let a = tape.input(Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = tape.input(Dense::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let y = tape.matmul(a, b);
        let loss = tape.sum_all(y);
        tape.backward_scalar(loss);
        let ones = Dense::ones(2, 2);
        let da = ones.matmul_transb(tape.value(b));
        let db = tape.value(a).matmul_transa(&ones);
        assert!(tape.grad(a).unwrap().approx_eq(&da, 1e-6));
        assert!(tape.grad(b).unwrap().approx_eq(&db, 1e-6));
    }

    #[test]
    fn constant_gets_no_grad() {
        let mut tape = Tape::new();
        let c = tape.constant(Dense::ones(2, 2));
        let x = tape.input(Dense::ones(2, 2));
        let y = tape.hadamard(c, x);
        let loss = tape.sum_all(y);
        tape.backward_scalar(loss);
        assert!(tape.grad(c).is_none());
        assert!(tape.grad(x).is_some());
    }

    #[test]
    fn spmm_backward_is_transpose_spmm() {
        let a = Rc::new(Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0), (0, 2)]));
        let mut tape = Tape::new();
        let x = tape.input(Dense::from_fn(3, 2, |r, c| (r + c) as f32));
        let y = tape.spmm(Rc::clone(&a), x);
        let loss = tape.sum_all(y);
        tape.backward_scalar(loss);
        let expected = a.spmm_transa(&Dense::ones(3, 2));
        assert!(tape.grad(x).unwrap().approx_eq(&expected, 1e-6));
    }

    #[test]
    fn diamond_accumulates_both_paths() {
        // y = x + x  =>  dy/dx = 2.
        let mut tape = Tape::new();
        let x = tape.input(Dense::ones(1, 3));
        let y = tape.add(x, x);
        let loss = tape.sum_all(y);
        tape.backward_scalar(loss);
        assert!(tape
            .grad(x)
            .unwrap()
            .approx_eq(&Dense::full(1, 3, 2.0), 1e-6));
    }

    #[test]
    fn softmax_xent_gradient_shape_and_sign() {
        let mut tape = Tape::new();
        let logits = tape.input(Dense::from_vec(2, 2, vec![2.0, -1.0, 0.0, 0.5]));
        let labels = Rc::new(vec![0u32, 1]);
        let loss = tape.softmax_cross_entropy(logits, labels);
        assert!(tape.value(loss).get(0, 0) > 0.0);
        tape.backward_scalar(loss);
        let g = tape.grad(logits).unwrap();
        // Gradient rows sum to zero (softmax simplex tangent).
        for r in 0..2 {
            let s: f32 = g.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
        // True-label coordinate has negative gradient.
        assert!(g.get(0, 0) < 0.0);
        assert!(g.get(1, 1) < 0.0);
    }

    #[test]
    fn multi_seed_backward_accumulates() {
        let mut tape = Tape::new();
        let x = tape.input(Dense::ones(2, 2));
        let y1 = tape.scale(x, 2.0);
        let y2 = tape.scale(x, 3.0);
        tape.backward(&[(y1, Dense::ones(2, 2)), (y2, Dense::ones(2, 2))]);
        assert!(tape
            .grad(x)
            .unwrap()
            .approx_eq(&Dense::full(2, 2, 5.0), 1e-6));
    }

    #[test]
    fn narrow_concat_roundtrip_gradient() {
        let mut tape = Tape::new();
        let x = tape.input(Dense::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let a = tape.narrow_cols(x, 0, 2);
        let b = tape.narrow_cols(x, 2, 2);
        let y = tape.concat_cols(a, b);
        let loss = tape.sum_all(y);
        tape.backward_scalar(loss);
        assert!(tape.grad(x).unwrap().approx_eq(&Dense::ones(1, 4), 1e-6));
    }
}
