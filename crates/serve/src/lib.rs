//! # dgnn-serve
//!
//! The inference side of the reproduction: once `dgnn-core` has trained a
//! model, this crate checkpoints it, loads it back, and serves embedding /
//! link-score queries **while the graph keeps evolving** — the ROADMAP's
//! "serve heavy traffic" direction, informed by InstantGNN's incremental
//! embedding maintenance and ReInc's reuse of intermediates across
//! snapshots (PAPERS.md).
//!
//! Three pieces:
//!
//! * [`Checkpoint`] — a versioned binary parameter format (magic, format
//!   revision, shape table, CRC-32) whose failure modes are all typed
//!   [`CheckpointError`]s; values round-trip bit-exactly.
//! * [`InferenceSession`] — holds the live graph plus cached per-layer GCN
//!   activations, and on each window advance recomputes only the
//!   per-layer frontier reachable from the touched vertices. The cached
//!   state is contractually **bit-identical** to a from-scratch forward
//!   over the materialized graph ([`InferenceSession::full_forward`]);
//!   `tests/inference_equivalence.rs` pins this under random event
//!   streams at multiple thread counts.
//! * [`InferenceServer`] — snapshot-isolated concurrent serving: a writer
//!   advances windows, readers answer batched queries from immutable
//!   published [`ServingSnapshot`]s (no torn reads), with the batched
//!   kernels running on the PR-2 thread pool.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod server;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use engine::{score_links_with, AdvanceReport, InferenceSession, ServeLayer, ServeModel};
pub use server::{snapshot_digest, InferenceServer, ServingSnapshot};
