//! The versioned binary checkpoint format for trained model parameters.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    b"DGNC"                          4 bytes
//! version  u32                              format revision (currently 1)
//! kind     u8                               ModelKind::code()
//! input_f, hidden, mprod_window,
//! smoothing_window                          4 × u32 (ModelConfig)
//! head_emb, head_classes                    2 × u32 (LinkPredHead)
//! n_params u32
//! shape table: per parameter
//!   name_len u32, name utf-8 bytes, rows u32, cols u32
//! data: per parameter, rows·cols f32 bit patterns, row-major
//! crc32    u32                              over every preceding byte
//! ```
//!
//! Values round-trip as raw `f32` bit patterns, so a load followed by a
//! forward pass is bit-identical to the original in-memory model. Every
//! failure mode — short file, foreign file, future format revision,
//! flipped bits, inconsistent shape table — surfaces as a typed
//! [`CheckpointError`], never a panic.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use dgnn_autograd::ParamStore;
use dgnn_models::{LinkPredHead, Model, ModelConfig, ModelKind};
use dgnn_tensor::Dense;

/// File magic: "DGNN Checkpoint".
pub const MAGIC: [u8; 4] = *b"DGNC";
/// Current format revision.
pub const FORMAT_VERSION: u32 = 1;
/// Parameter-name length cap — a corrupt length field must not drive a
/// multi-gigabyte allocation before the checksum gets a chance to reject.
const MAX_NAME_LEN: u32 = 4096;
/// Parameter-count cap, for the same reason.
const MAX_PARAMS: usize = 1 << 16;

/// Why a checkpoint could not be decoded.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure (open/read/write).
    Io(io::Error),
    /// The leading bytes are not the checkpoint magic.
    BadMagic([u8; 4]),
    /// The file's format revision is newer than this build understands.
    UnsupportedVersion {
        /// Revision found in the header.
        found: u32,
    },
    /// The file ends before the structure it declares.
    Truncated,
    /// The trailing CRC does not match the content.
    ChecksumMismatch {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the content.
        computed: u32,
    },
    /// Structurally inconsistent content (bad kind tag, oversized name,
    /// non-UTF-8 name, trailing garbage …).
    Malformed(&'static str),
    /// The checkpoint does not line up with the parameter store it is
    /// being imported into.
    StoreMismatch(String),
    /// The checkpoint decodes fine but its architecture cannot be served
    /// (e.g. CD-GCN, whose trained layer widths only compose through the
    /// temporal feature LSTM that the snapshot forward omits).
    UnsupportedModel(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadMagic(m) => write!(f, "not a dgnn checkpoint (magic {m:?})"),
            CheckpointError::UnsupportedVersion { found } => write!(
                f,
                "checkpoint format revision {found} is newer than supported {FORMAT_VERSION}"
            ),
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::StoreMismatch(what) => {
                write!(f, "checkpoint does not match the parameter store: {what}")
            }
            CheckpointError::UnsupportedModel(what) => {
                write!(f, "model cannot be served: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// The CRC implementation moved to `dgnn_tensor::digest` when `dgnn-store`
// adopted the same framing; this re-export keeps the original path alive.
pub use dgnn_tensor::digest::crc32;

/// A decoded (or to-be-encoded) checkpoint: the model/head metadata plus
/// every named parameter matrix, in `ParamStore` registration order.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Architecture hyper-parameters of the trained model.
    pub config: ModelConfig,
    /// Embedding width the link-prediction head expects.
    pub head_emb: usize,
    /// Number of head output classes.
    pub head_classes: usize,
    /// `(name, value)` per parameter, in registration order.
    pub params: Vec<(String, Dense)>,
}

impl Checkpoint {
    /// Snapshots a trained model + head out of its parameter store.
    pub fn from_store(model: &Model, head: &LinkPredHead, store: &ParamStore) -> Self {
        let params = store
            .ids()
            .map(|id| (store.name(id).to_string(), store.value(id).clone()))
            .collect();
        Self {
            config: *model.config(),
            head_emb: head.emb(),
            head_classes: head.classes(),
            params,
        }
    }

    /// The parameter value saved under `name`, if present.
    pub fn param(&self, name: &str) -> Option<&Dense> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Imports the saved values into a live store (e.g. one freshly built
    /// by `Model::new` with the same config), by name. Every checkpoint
    /// parameter must exist in the store with the same shape.
    pub fn load_into(&self, store: &mut ParamStore) -> Result<(), CheckpointError> {
        // Validate everything before mutating anything.
        let mut ids = Vec::with_capacity(self.params.len());
        for (name, value) in &self.params {
            let id = store.id_of(name).ok_or_else(|| {
                CheckpointError::StoreMismatch(format!("store has no parameter named {name:?}"))
            })?;
            if store.value(id).shape() != value.shape() {
                return Err(CheckpointError::StoreMismatch(format!(
                    "parameter {name:?} is {:?} in the store but {:?} in the checkpoint",
                    store.value(id).shape(),
                    value.shape()
                )));
            }
            ids.push(id);
        }
        for (id, (_, value)) in ids.into_iter().zip(&self.params) {
            *store.value_mut(id) = value.clone();
        }
        Ok(())
    }

    /// Serializes to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let data_len: usize = self.params.iter().map(|(_, v)| v.len() * 4).sum();
        let mut out = Vec::with_capacity(64 + data_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(self.config.kind.code());
        for field in [
            self.config.input_f,
            self.config.hidden,
            self.config.mprod_window,
            self.config.smoothing_window,
            self.head_emb,
            self.head_classes,
            self.params.len(),
        ] {
            out.extend_from_slice(&(field as u32).to_le_bytes());
        }
        for (name, value) in &self.params {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(value.rows() as u32).to_le_bytes());
            out.extend_from_slice(&(value.cols() as u32).to_le_bytes());
        }
        for (_, value) in &self.params {
            for &v in value.data() {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes the versioned binary format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Cursor { bytes, pos: 0 };
        let magic = r.take::<4>()?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic(magic));
        }
        let version = r.u32()?;
        if version > FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let kind = ModelKind::from_code(r.u8()?)
            .ok_or(CheckpointError::Malformed("unknown model-kind tag"))?;
        let input_f = r.u32()? as usize;
        let hidden = r.u32()? as usize;
        let mprod_window = r.u32()? as usize;
        let smoothing_window = r.u32()? as usize;
        let head_emb = r.u32()? as usize;
        let head_classes = r.u32()? as usize;
        let n_params = r.u32()? as usize;
        if n_params > MAX_PARAMS {
            return Err(CheckpointError::Malformed("parameter count implausible"));
        }

        let mut shapes = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            let name_len = r.u32()?;
            if name_len > MAX_NAME_LEN {
                return Err(CheckpointError::Malformed("parameter name too long"));
            }
            let name = String::from_utf8(r.slice(name_len as usize)?.to_vec())
                .map_err(|_| CheckpointError::Malformed("parameter name is not utf-8"))?;
            let rows = r.u32()? as usize;
            let cols = r.u32()? as usize;
            shapes.push((name, rows, cols));
        }
        let mut params = Vec::with_capacity(n_params);
        for (name, rows, cols) in shapes {
            let n = rows
                .checked_mul(cols)
                .and_then(|n| n.checked_mul(4))
                .ok_or(CheckpointError::Malformed("parameter shape overflows"))?;
            let raw = r.slice(n)?;
            let data = raw
                .chunks_exact(4)
                .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
                .collect();
            params.push((name, Dense::from_vec(rows, cols, data)));
        }
        if r.pos != bytes.len() - 4 {
            return Err(CheckpointError::Malformed("trailing bytes after data"));
        }
        // Structure parsed in full — now reject any flipped bit. Checking
        // last keeps truncation and corruption distinguishable.
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        let computed = crc32(&bytes[..bytes.len() - 4]);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }
        Ok(Self {
            config: ModelConfig {
                kind,
                input_f,
                hidden,
                mprod_window,
                smoothing_window,
            },
            head_emb,
            head_classes,
            params,
        })
    }

    /// Writes the checkpoint to `w`.
    pub fn write_to(&self, mut w: impl Write) -> Result<(), CheckpointError> {
        w.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Reads and decodes a checkpoint from `r`.
    pub fn read_from(mut r: impl Read) -> Result<Self, CheckpointError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Saves to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        self.write_to(std::fs::File::create(path)?)
    }

    /// Loads from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        Self::read_from(std::fs::File::open(path)?)
    }
}

/// Bounds-checked little-endian reader over the checkpoint bytes; every
/// overrun maps to [`CheckpointError::Truncated`].
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn slice(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        // The trailing 4 CRC bytes are not content; reading into them means
        // the declared structure does not fit the file.
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        // checked: a crafted shape table can place `end` near usize::MAX,
        // and a wrapping `end + 4` here would dodge the bound straight into
        // a slice panic.
        if end.checked_add(4).is_none_or(|e| e > self.bytes.len()) {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], CheckpointError> {
        Ok(self.slice(N)?.try_into().unwrap())
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            config: ModelConfig {
                kind: ModelKind::TmGcn,
                input_f: 2,
                hidden: 3,
                mprod_window: 4,
                smoothing_window: 5,
            },
            head_emb: 3,
            head_classes: 2,
            params: vec![
                (
                    "gcn0.w".into(),
                    Dense::from_vec(2, 3, vec![1.5, -0.25, 0.0, f32::MIN_POSITIVE, 3e7, -1.0]),
                ),
                ("gcn0.b".into(), Dense::from_vec(1, 3, vec![0.1, 0.2, 0.3])),
            ],
        }
    }

    fn bits(d: &Dense) -> Vec<u32> {
        d.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn roundtrip_preserves_every_bit() {
        let cp = sample();
        let back = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
        assert_eq!(back.config.kind, cp.config.kind);
        assert_eq!(back.config.hidden, cp.config.hidden);
        assert_eq!(back.head_emb, 3);
        assert_eq!(back.head_classes, 2);
        assert_eq!(back.params.len(), 2);
        for ((na, va), (nb, vb)) in cp.params.iter().zip(&back.params) {
            assert_eq!(na, nb);
            assert_eq!(va.shape(), vb.shape());
            assert_eq!(bits(va), bits(vb));
        }
    }

    #[test]
    fn truncation_at_every_length_is_typed() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() - 1 {
            match Checkpoint::from_bytes(&bytes[..len]) {
                Err(CheckpointError::Truncated) => {}
                other => panic!("prefix of {len} bytes: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic(_))
        ));
    }

    #[test]
    fn future_version_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let mut bytes = sample().to_bytes();
        // Flip a bit inside the f32 payload (the last 9 values · 4 bytes
        // precede the 4 CRC bytes), where the structure still parses.
        let idx = bytes.len() - 4 - 10;
        bytes[idx] ^= 0x40;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }
}
