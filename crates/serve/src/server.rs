//! Concurrent serving: a writer applies window advances while readers
//! answer batched queries from immutable published snapshots.
//!
//! The consistency model is snapshot isolation by publication: after each
//! advance the writer clones the final-layer embeddings into a fresh
//! immutable [`ServingSnapshot`] and swaps the shared `Arc` under a brief
//! write lock. Readers clone the `Arc` under a read lock and then compute
//! entirely lock-free on frozen data — a query can never observe half of
//! one window and half of the next (no torn reads), which the stress test
//! pins with a per-snapshot digest. Queries run on the PR-2 intra-rank
//! thread pool through the batched `gather_rows`/`matmul` kernels, so a
//! large batch parallelizes without extra plumbing.

use std::sync::{Arc, Mutex, RwLock};

use dgnn_stream::EdgeEvent;
use dgnn_tensor::Dense;

use crate::engine::{score_links_with, AdvanceReport, InferenceSession};

/// One immutable published state of the serving model.
#[derive(Clone, Debug)]
pub struct ServingSnapshot {
    /// Monotone snapshot version (one per advance).
    pub version: u64,
    /// Event clock of the underlying graph at publication.
    pub clock: u64,
    /// Final-layer embeddings (`N × emb`).
    pub embeddings: Dense,
    head_u: Dense,
    head_b: Dense,
    /// Digest over `(version, clock, embedding bits)`, written at
    /// publication; readers recompute it to prove they saw one coherent
    /// snapshot.
    pub digest: u64,
}

/// FNV-1a over the version, clock, and every embedding bit pattern.
pub fn snapshot_digest(version: u64, clock: u64, embeddings: &Dense) -> u64 {
    let mut h = dgnn_tensor::digest::Fnv1a::new();
    h.eat_u64(version);
    h.eat_u64(clock);
    h.eat_u64(embeddings.rows() as u64);
    h.eat_u64(embeddings.cols() as u64);
    for &v in embeddings.data() {
        h.eat_u64(u64::from(v.to_bits()));
    }
    h.finish()
}

impl ServingSnapshot {
    /// Recomputes the digest from the carried data (consistency probe).
    pub fn recompute_digest(&self) -> u64 {
        snapshot_digest(self.version, self.clock, &self.embeddings)
    }

    /// Batched node-embedding lookup against this frozen snapshot.
    pub fn predict_nodes(&self, nodes: &[u32]) -> Dense {
        self.embeddings.gather_rows(nodes)
    }

    /// Batched link scoring against this frozen snapshot.
    pub fn score_links(&self, pairs: &[(u32, u32)]) -> Vec<f32> {
        score_links_with(&self.head_u, &self.head_b, &self.embeddings, pairs)
    }
}

/// A shareable serving endpoint: one writer mutates the session, any
/// number of readers query published snapshots.
pub struct InferenceServer {
    session: Mutex<InferenceSession>,
    published: RwLock<Arc<ServingSnapshot>>,
}

impl InferenceServer {
    /// Wraps a session, publishing its current state as version 0 (or
    /// whatever the session has advanced to).
    pub fn new(session: InferenceSession) -> Self {
        let snapshot = Arc::new(Self::snapshot_of(&session));
        Self {
            session: Mutex::new(session),
            published: RwLock::new(snapshot),
        }
    }

    fn snapshot_of(session: &InferenceSession) -> ServingSnapshot {
        let embeddings = session.embeddings().clone();
        let (head_u, head_b) = session.model().head();
        let version = session.version();
        let clock = session.graph().clock();
        let digest = snapshot_digest(version, clock, &embeddings);
        ServingSnapshot {
            version,
            clock,
            embeddings,
            head_u: head_u.clone(),
            head_b: head_b.clone(),
            digest,
        }
    }

    /// The latest published snapshot. Cheap: clones an `Arc` under a read
    /// lock held for the duration of the clone only.
    pub fn snapshot(&self) -> Arc<ServingSnapshot> {
        Arc::clone(&self.published.read().expect("published lock poisoned"))
    }

    /// Ingests a window of events, advances the session incrementally, and
    /// publishes the new snapshot. Serialized across callers by the writer
    /// lock; readers are never blocked for longer than the `Arc` swap.
    pub fn ingest_and_advance(&self, events: &[EdgeEvent]) -> AdvanceReport {
        let mut session = self.session.lock().expect("session lock poisoned");
        session.ingest(events);
        let report = session.advance();
        let snapshot = Arc::new(Self::snapshot_of(&session));
        // Publish while still holding the writer lock, so versions are
        // published in order.
        *self.published.write().expect("published lock poisoned") = snapshot;
        report
    }

    /// Convenience: batched node lookup on the latest snapshot.
    pub fn predict_nodes(&self, nodes: &[u32]) -> (Dense, u64) {
        let snap = self.snapshot();
        (snap.predict_nodes(nodes), snap.version)
    }

    /// Convenience: batched link scoring on the latest snapshot.
    pub fn score_links(&self, pairs: &[(u32, u32)]) -> (Vec<f32>, u64) {
        let snap = self.snapshot();
        (snap.score_links(pairs), snap.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::tiny_model;

    fn feats(n: usize, f: usize) -> Dense {
        Dense::from_fn(n, f, |r, c| ((r * 7 + c) % 5) as f32 / 5.0)
    }

    #[test]
    fn publishes_versions_in_order_with_valid_digests() {
        let server =
            InferenceServer::new(InferenceSession::new(tiny_model(2, 3, false), feats(8, 2)));
        assert_eq!(server.snapshot().version, 0);
        assert_eq!(
            server.snapshot().recompute_digest(),
            server.snapshot().digest
        );
        let r1 = server.ingest_and_advance(&[EdgeEvent::add(0, 0, 1, 1.0)]);
        let r2 = server.ingest_and_advance(&[EdgeEvent::add(1, 2, 3, 1.0)]);
        assert_eq!((r1.version, r2.version), (1, 2));
        let snap = server.snapshot();
        assert_eq!(snap.version, 2);
        assert_eq!(snap.recompute_digest(), snap.digest);
    }

    #[test]
    fn snapshot_queries_match_session_queries() {
        let session = {
            let mut s = InferenceSession::new(tiny_model(2, 3, false), feats(6, 2));
            s.ingest(&[EdgeEvent::add(0, 0, 1, 1.0), EdgeEvent::add(0, 4, 5, 2.0)]);
            s.advance();
            s
        };
        let expect_nodes = session.predict_nodes(&[0, 1, 5]);
        let expect_scores = session.score_links(&[(0, 1), (2, 3)]);
        let server = InferenceServer::new(session);
        let (nodes, v1) = server.predict_nodes(&[0, 1, 5]);
        let (scores, v2) = server.score_links(&[(0, 1), (2, 3)]);
        assert_eq!((v1, v2), (1, 1));
        assert_eq!(nodes, expect_nodes);
        assert_eq!(
            scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            expect_scores
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn old_snapshots_stay_frozen_across_advances() {
        let server =
            InferenceServer::new(InferenceSession::new(tiny_model(2, 3, false), feats(6, 2)));
        let old = server.snapshot();
        let old_digest = old.digest;
        server.ingest_and_advance(&[EdgeEvent::add(0, 0, 1, 1.0)]);
        // The handle we took before the advance is untouched.
        assert_eq!(old.version, 0);
        assert_eq!(old.recompute_digest(), old_digest);
        assert_ne!(server.snapshot().version, old.version);
    }
}
