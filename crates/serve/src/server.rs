//! Concurrent serving: a writer applies window advances while readers
//! answer batched queries from immutable published snapshots.
//!
//! The consistency model is snapshot isolation by publication: after each
//! advance the writer clones the final-layer embeddings into a fresh
//! immutable [`ServingSnapshot`] and swaps the shared `Arc` under a brief
//! write lock. Readers clone the `Arc` under a read lock and then compute
//! entirely lock-free on frozen data — a query can never observe half of
//! one window and half of the next (no torn reads), which the stress test
//! pins with a per-snapshot digest. Queries run on the PR-2 intra-rank
//! thread pool through the batched `gather_rows`/`matmul` kernels, so a
//! large batch parallelizes without extra plumbing.

use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use dgnn_stream::EdgeEvent;
use dgnn_telemetry::metrics::{Counter, Gauge, Histogram, Registry};
use dgnn_telemetry::trace;
use dgnn_tensor::Dense;

use crate::engine::{score_links_with, AdvanceReport, InferenceSession};

/// Query batch-size histogram bounds: powers of two up to 64 Ki rows.
const BATCH_BOUNDS: [f64; 17] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
    16384.0, 32768.0, 65536.0,
];

/// The server's instrument handles, backed by a per-server [`Registry`].
/// Recording is a handful of relaxed atomic ops per request — always on,
/// independent of `DGNN_TRACE` (metrics never touch the numeric path).
struct ServeMetrics {
    registry: Registry,
    requests: Counter,
    request_us: Histogram,
    batch_rows: Histogram,
    advances: Counter,
    advance_us: Histogram,
    touched_rows: Counter,
    snapshot_version: Gauge,
    snapshot_age_us: Gauge,
}

impl ServeMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        Self {
            requests: registry.counter("serve_requests_total"),
            request_us: registry.histogram("serve_request_us"),
            batch_rows: registry.histogram_with("serve_batch_rows", &BATCH_BOUNDS),
            advances: registry.counter("serve_advances_total"),
            advance_us: registry.histogram("serve_advance_us"),
            touched_rows: registry.counter("serve_touched_rows_total"),
            snapshot_version: registry.gauge("serve_snapshot_version"),
            snapshot_age_us: registry.gauge("serve_snapshot_age_us"),
            registry,
        }
    }

    fn observe_request(&self, rows: usize, started: Instant) {
        self.requests.inc();
        self.batch_rows.observe(rows as f64);
        self.request_us
            .observe(started.elapsed().as_secs_f64() * 1e6);
    }
}

/// One immutable published state of the serving model.
#[derive(Clone, Debug)]
pub struct ServingSnapshot {
    /// Monotone snapshot version (one per advance).
    pub version: u64,
    /// Event clock of the underlying graph at publication.
    pub clock: u64,
    /// Final-layer embeddings (`N × emb`).
    pub embeddings: Dense,
    head_u: Dense,
    head_b: Dense,
    /// Digest over `(version, clock, embedding bits)`, written at
    /// publication; readers recompute it to prove they saw one coherent
    /// snapshot.
    pub digest: u64,
}

/// FNV-1a over the version, clock, and every embedding bit pattern.
pub fn snapshot_digest(version: u64, clock: u64, embeddings: &Dense) -> u64 {
    let mut h = dgnn_tensor::digest::Fnv1a::new();
    h.eat_u64(version);
    h.eat_u64(clock);
    h.eat_u64(embeddings.rows() as u64);
    h.eat_u64(embeddings.cols() as u64);
    for &v in embeddings.data() {
        h.eat_u64(u64::from(v.to_bits()));
    }
    h.finish()
}

impl ServingSnapshot {
    /// Recomputes the digest from the carried data (consistency probe).
    pub fn recompute_digest(&self) -> u64 {
        snapshot_digest(self.version, self.clock, &self.embeddings)
    }

    /// Batched node-embedding lookup against this frozen snapshot.
    pub fn predict_nodes(&self, nodes: &[u32]) -> Dense {
        self.embeddings.gather_rows(nodes)
    }

    /// Batched link scoring against this frozen snapshot.
    pub fn score_links(&self, pairs: &[(u32, u32)]) -> Vec<f32> {
        score_links_with(&self.head_u, &self.head_b, &self.embeddings, pairs)
    }
}

/// A shareable serving endpoint: one writer mutates the session, any
/// number of readers query published snapshots.
pub struct InferenceServer {
    session: Mutex<InferenceSession>,
    published: RwLock<Arc<ServingSnapshot>>,
    metrics: ServeMetrics,
    /// When the current snapshot was published (for the age gauge).
    published_at: Mutex<Instant>,
}

impl InferenceServer {
    /// Wraps a session, publishing its current state as version 0 (or
    /// whatever the session has advanced to).
    pub fn new(session: InferenceSession) -> Self {
        let snapshot = Arc::new(Self::snapshot_of(&session));
        let metrics = ServeMetrics::new();
        metrics.snapshot_version.set(snapshot.version as f64);
        Self {
            session: Mutex::new(session),
            published: RwLock::new(snapshot),
            metrics,
            published_at: Mutex::new(Instant::now()),
        }
    }

    fn snapshot_of(session: &InferenceSession) -> ServingSnapshot {
        let embeddings = session.embeddings().clone();
        let (head_u, head_b) = session.model().head();
        let version = session.version();
        let clock = session.graph().clock();
        let digest = snapshot_digest(version, clock, &embeddings);
        ServingSnapshot {
            version,
            clock,
            embeddings,
            head_u: head_u.clone(),
            head_b: head_b.clone(),
            digest,
        }
    }

    /// The latest published snapshot. Cheap: clones an `Arc` under a read
    /// lock held for the duration of the clone only.
    pub fn snapshot(&self) -> Arc<ServingSnapshot> {
        Arc::clone(&self.published.read().expect("published lock poisoned"))
    }

    /// Ingests a window of events, advances the session incrementally, and
    /// publishes the new snapshot. Serialized across callers by the writer
    /// lock; readers are never blocked for longer than the `Arc` swap.
    pub fn ingest_and_advance(&self, events: &[EdgeEvent]) -> AdvanceReport {
        let started = Instant::now();
        let span = trace::span_cat("serve_advance", "serve");
        let mut session = self.session.lock().expect("session lock poisoned");
        session.ingest(events);
        let report = session.advance();
        let snapshot = Arc::new(Self::snapshot_of(&session));
        // Publish while still holding the writer lock, so versions are
        // published in order.
        *self.published.write().expect("published lock poisoned") = snapshot;
        *self.published_at.lock().expect("publish clock poisoned") = Instant::now();
        drop(span);
        self.metrics.advances.inc();
        self.metrics
            .advance_us
            .observe(started.elapsed().as_secs_f64() * 1e6);
        self.metrics.touched_rows.add(report.touched as u64);
        self.metrics.snapshot_version.set(report.version as f64);
        report
    }

    /// Convenience: batched node lookup on the latest snapshot.
    pub fn predict_nodes(&self, nodes: &[u32]) -> (Dense, u64) {
        let started = Instant::now();
        let snap = self.snapshot();
        let out = snap.predict_nodes(nodes);
        self.metrics.observe_request(nodes.len(), started);
        (out, snap.version)
    }

    /// Convenience: batched link scoring on the latest snapshot.
    pub fn score_links(&self, pairs: &[(u32, u32)]) -> (Vec<f32>, u64) {
        let started = Instant::now();
        let snap = self.snapshot();
        let out = snap.score_links(pairs);
        self.metrics.observe_request(pairs.len(), started);
        (out, snap.version)
    }

    /// Prometheus-style text exposition of the server's metrics: request
    /// latency and batch-size histograms (with p50/p99/p999 quantile
    /// lines), advance latency, touched-row and request counters, and the
    /// published snapshot's version and age.
    pub fn metrics_exposition(&self) -> String {
        let age = self
            .published_at
            .lock()
            .expect("publish clock poisoned")
            .elapsed();
        self.metrics.snapshot_age_us.set(age.as_secs_f64() * 1e6);
        self.metrics.registry.expose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::tiny_model;

    fn feats(n: usize, f: usize) -> Dense {
        Dense::from_fn(n, f, |r, c| ((r * 7 + c) % 5) as f32 / 5.0)
    }

    #[test]
    fn publishes_versions_in_order_with_valid_digests() {
        let server =
            InferenceServer::new(InferenceSession::new(tiny_model(2, 3, false), feats(8, 2)));
        assert_eq!(server.snapshot().version, 0);
        assert_eq!(
            server.snapshot().recompute_digest(),
            server.snapshot().digest
        );
        let r1 = server.ingest_and_advance(&[EdgeEvent::add(0, 0, 1, 1.0)]);
        let r2 = server.ingest_and_advance(&[EdgeEvent::add(1, 2, 3, 1.0)]);
        assert_eq!((r1.version, r2.version), (1, 2));
        let snap = server.snapshot();
        assert_eq!(snap.version, 2);
        assert_eq!(snap.recompute_digest(), snap.digest);
    }

    #[test]
    fn snapshot_queries_match_session_queries() {
        let session = {
            let mut s = InferenceSession::new(tiny_model(2, 3, false), feats(6, 2));
            s.ingest(&[EdgeEvent::add(0, 0, 1, 1.0), EdgeEvent::add(0, 4, 5, 2.0)]);
            s.advance();
            s
        };
        let expect_nodes = session.predict_nodes(&[0, 1, 5]);
        let expect_scores = session.score_links(&[(0, 1), (2, 3)]);
        let server = InferenceServer::new(session);
        let (nodes, v1) = server.predict_nodes(&[0, 1, 5]);
        let (scores, v2) = server.score_links(&[(0, 1), (2, 3)]);
        assert_eq!((v1, v2), (1, 1));
        assert_eq!(nodes, expect_nodes);
        assert_eq!(
            scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            expect_scores
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn metrics_exposition_reports_requests_and_snapshot_state() {
        let server =
            InferenceServer::new(InferenceSession::new(tiny_model(2, 3, false), feats(8, 2)));
        server.ingest_and_advance(&[EdgeEvent::add(0, 0, 1, 1.0)]);
        server.predict_nodes(&[0, 1, 2]);
        server.score_links(&[(0, 1)]);
        let text = server.metrics_exposition();
        assert!(text.contains("# TYPE serve_request_us histogram"), "{text}");
        assert!(text.contains("serve_request_us_count 2"), "{text}");
        for q in ["0.5", "0.99", "0.999"] {
            assert!(
                text.contains(&format!("serve_request_us{{quantile=\"{q}\"}}")),
                "missing p{q} line in:\n{text}"
            );
        }
        assert!(text.contains("serve_requests_total 2"), "{text}");
        assert!(text.contains("serve_advances_total 1"), "{text}");
        assert!(text.contains("serve_snapshot_version 1"), "{text}");
        // Batch rows: 3 + 1 = two observations summing to 4.
        assert!(text.contains("serve_batch_rows_count 2"), "{text}");
        assert!(text.contains("serve_batch_rows_sum 4"), "{text}");
    }

    #[test]
    fn old_snapshots_stay_frozen_across_advances() {
        let server =
            InferenceServer::new(InferenceSession::new(tiny_model(2, 3, false), feats(6, 2)));
        let old = server.snapshot();
        let old_digest = old.digest;
        server.ingest_and_advance(&[EdgeEvent::add(0, 0, 1, 1.0)]);
        // The handle we took before the advance is untouched.
        assert_eq!(old.version, 0);
        assert_eq!(old.recompute_digest(), old_digest);
        assert_ne!(server.snapshot().version, old.version);
    }
}
