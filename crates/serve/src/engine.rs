//! The incremental inference engine: a value-level GCN forward over the
//! live graph, recomputing only the multi-hop frontier of touched vertices
//! on each window advance.
//!
//! ## The incremental-recompute contract
//!
//! After every [`InferenceSession::advance`], each cached layer activation
//! is **bit-identical** to what [`InferenceSession::full_forward`] computes
//! from scratch on the materialized graph. The argument has three legs:
//!
//! 1. *Locality of the operator.* Row `u` of the normalized Laplacian
//!    `Ã[u, v] = a_uv · d(u)^{-1/2} · d(v)^{-1/2}` depends only on row `u`
//!    of the (symmetric) adjacency and the degrees of `u` and its
//!    neighbors. An edge touch changes adjacency rows and degrees of its
//!    two endpoints only, so the set of changed `Ã` rows is contained in
//!    `T ∪ N(T)` (touched vertices and their new neighborhood — a removed
//!    edge's partner is itself touched).
//! 2. *Locality of the layers.* Layer output row `u` is a function of `Ã`
//!    row `u` and the previous layer's rows at `u`'s neighbors, so the
//!    dirty set expands by one hop per GCN layer:
//!    `F_0 = T ∪ N(T)`, `F_{l+1} = F_l ∪ N(F_l)`.
//! 3. *Bitwise-reproducible row arithmetic.* Rebuilt `Ã` rows, the
//!    row-subset SpMM ([`Csr::spmm_rows`]), the row-subset GEMM, and the
//!    element-wise bias/activation all run the exact per-row expression
//!    the full path runs, and rows outside the frontier keep cached values
//!    whose inputs did not change — equal expressions over equal bits give
//!    equal bits, at every thread count (the PR-2 determinism contract).
//!
//! Events are ingested as **undirected interactions**: each event is
//! applied to `(u, v)` and mirrored onto `(v, u)`, keeping the adjacency
//! symmetric — which is also what makes the per-layer frontier expansion
//! sound (out-neighbors and in-neighbors coincide). The serving operator
//! normalizes this symmetric adjacency directly; it is the value-level
//! analogue of the symmetrized training Laplacian, with the mirrored
//! event stream playing the role of `(A + Aᵀ)`.

use dgnn_autograd::ParamStore;
use dgnn_graph::GraphDiff;
use dgnn_models::{LinkPredHead, Model, ModelKind};
use dgnn_stream::{DeltaBatcher, EdgeEvent, StreamingGraph};
use dgnn_telemetry::trace;
use dgnn_tensor::{Csr, Dense};

use crate::checkpoint::{Checkpoint, CheckpointError};

/// One GCN layer's frozen parameters.
#[derive(Clone, Debug)]
pub struct ServeLayer {
    /// Weight matrix (`in_f × out_f`).
    pub w: Dense,
    /// Bias row (`1 × out_f`).
    pub b: Dense,
    /// CD-GCN's skip concatenation of the aggregated input.
    pub skip_concat: bool,
}

impl ServeLayer {
    /// Output width given this layer's weight and skip setting.
    pub fn out_width(&self) -> usize {
        if self.skip_concat {
            self.w.rows() + self.w.cols()
        } else {
            self.w.cols()
        }
    }

    /// The layer forward for a block of pre-aggregated rows: the exact
    /// per-row arithmetic of the full forward, applied to any row subset.
    fn forward_rows(&self, agg: &Dense) -> Dense {
        let lin = agg.matmul(&self.w);
        let pre = lin.add_row_broadcast(&self.b);
        if self.skip_concat {
            relu(&agg.concat_cols(&pre))
        } else {
            relu(&pre)
        }
    }
}

/// ReLU as one shared expression, so the full and incremental paths cannot
/// drift apart.
fn relu(m: &Dense) -> Dense {
    m.map(|v| if v > 0.0 { v } else { 0.0 })
}

/// The frozen spatial stack served at inference time: the per-layer GCN
/// weights plus the link-prediction head. Temporal components (feature /
/// weight LSTMs) evolve only during training; serving freezes the spatial
/// weights they produced, which is exactly the static part of the forward
/// that the current snapshot determines.
#[derive(Clone, Debug)]
pub struct ServeModel {
    layers: Vec<ServeLayer>,
    head_u: Dense,
    head_b: Dense,
}

impl ServeModel {
    /// Builds from explicit parts (tests, synthetic benches).
    ///
    /// # Panics
    /// Panics when the layer widths do not compose — hand-built parts are
    /// a programmer error, unlike checkpoints, which get typed errors.
    pub fn from_parts(layers: Vec<ServeLayer>, head_u: Dense, head_b: Dense) -> Self {
        Self::checked(layers, head_u, head_b).expect("serve model parts must compose")
    }

    /// Lifts the spatial stack out of a decoded [`Checkpoint`].
    pub fn from_checkpoint(cp: &Checkpoint) -> Result<Self, CheckpointError> {
        let mut layers = Vec::with_capacity(cp.config.layers());
        for l in 0..cp.config.layers() {
            let take = |suffix: &str| {
                cp.param(&format!("gcn{l}.{suffix}"))
                    .cloned()
                    .ok_or_else(|| {
                        CheckpointError::StoreMismatch(format!("checkpoint lacks gcn{l}.{suffix}"))
                    })
            };
            layers.push(ServeLayer {
                w: take("w")?,
                b: take("b")?,
                skip_concat: cp.config.kind == ModelKind::CdGcn,
            });
        }
        let head_u = cp
            .param("head.u")
            .cloned()
            .ok_or_else(|| CheckpointError::StoreMismatch("checkpoint lacks head.u".into()))?;
        let head_b = cp
            .param("head.b")
            .cloned()
            .ok_or_else(|| CheckpointError::StoreMismatch("checkpoint lacks head.b".into()))?;
        Self::checked(layers, head_u, head_b)
    }

    /// Lifts the spatial stack straight out of a live trained model.
    pub fn from_model(
        model: &Model,
        head: &LinkPredHead,
        store: &ParamStore,
    ) -> Result<Self, CheckpointError> {
        let layers = model
            .gcn_layers()
            .iter()
            .map(|g| ServeLayer {
                w: store.value(g.w).clone(),
                b: store.value(g.b).clone(),
                skip_concat: g.skip_concat(),
            })
            .collect();
        Self::checked(
            layers,
            store.value(head.u).clone(),
            store.value(head.b).clone(),
        )
    }

    /// Validates that the layer widths actually compose as a pure spatial
    /// stack. CD-GCN fails here by construction: its trained `gcn1.w` takes
    /// `hidden` rows because the training forward interposes a feature
    /// LSTM (`gcn_out → hidden`) between the layers, a temporal component
    /// the snapshot forward cannot supply — serving it would be a shape
    /// panic at the first query, so it is refused up front as a typed
    /// error.
    fn checked(
        layers: Vec<ServeLayer>,
        head_u: Dense,
        head_b: Dense,
    ) -> Result<Self, CheckpointError> {
        assert!(!layers.is_empty(), "need at least one layer");
        for (l, pair) in layers.windows(2).enumerate() {
            let (out_w, in_w) = (pair[0].out_width(), pair[1].w.rows());
            if out_w != in_w {
                return Err(CheckpointError::UnsupportedModel(format!(
                    "layer {l} emits width {out_w} but layer {} consumes width {in_w}; \
                     the layers do not compose without the training-time temporal \
                     component (CD-GCN cannot be served as a pure spatial stack)",
                    l + 1
                )));
            }
        }
        let emb = layers.last().unwrap().out_width();
        if head_u.rows() != 2 * emb {
            return Err(CheckpointError::UnsupportedModel(format!(
                "head expects embeddings of width {} but the stack emits {emb}",
                head_u.rows() / 2
            )));
        }
        if head_u.cols() < 2 || head_b.cols() != head_u.cols() {
            return Err(CheckpointError::UnsupportedModel(format!(
                "link scoring needs a >= 2-class head with matching bias \
                 (head.u has {} classes, head.b has {})",
                head_u.cols(),
                head_b.cols()
            )));
        }
        Ok(Self {
            layers,
            head_u,
            head_b,
        })
    }

    /// Number of GCN layers.
    pub fn layers(&self) -> usize {
        self.layers.len()
    }

    /// Input feature width the first layer expects.
    pub fn input_f(&self) -> usize {
        self.layers[0].w.rows()
    }

    /// Final embedding width.
    pub fn embedding_dim(&self) -> usize {
        self.layers.last().unwrap().out_width()
    }

    /// The head's projection and bias (shared with published snapshots).
    pub fn head(&self) -> (&Dense, &Dense) {
        (&self.head_u, &self.head_b)
    }
}

/// Link scores for explicit head parameters and an embedding matrix: the
/// positive-class logit margin `logit₁ − logit₀` of each pair. All kernels
/// involved (row gather, GEMM, bias broadcast) run on the intra-rank
/// thread pool and are bit-stable at every thread count.
pub fn score_links_with(
    head_u: &Dense,
    head_b: &Dense,
    z: &Dense,
    pairs: &[(u32, u32)],
) -> Vec<f32> {
    assert!(head_b.cols() >= 2, "link scoring needs >= 2 classes");
    let src: Vec<u32> = pairs.iter().map(|&(u, _)| u).collect();
    let dst: Vec<u32> = pairs.iter().map(|&(_, v)| v).collect();
    let zu = z.gather_rows(&src);
    let zv = z.gather_rows(&dst);
    let logits = zu.concat_cols(&zv).matmul(head_u).add_row_broadcast(head_b);
    (0..pairs.len())
        .map(|i| logits.get(i, 1) - logits.get(i, 0))
        .collect()
}

/// What one [`InferenceSession::advance`] did.
#[derive(Clone, Debug)]
pub struct AdvanceReport {
    /// Monotone snapshot version after the advance.
    pub version: u64,
    /// The §3.2 graph difference this window shipped (subscription hook
    /// for replicas / transfer accounting).
    pub diff: GraphDiff,
    /// Vertices touched by the window's events.
    pub touched: usize,
    /// Recomputed rows per GCN layer (the multi-hop frontier sizes).
    pub frontier_rows: Vec<usize>,
}

/// A live inference session: frozen weights, fixed node features, an
/// evolving graph, and cached per-layer activations maintained by frontier
/// recompute.
pub struct InferenceSession {
    model: ServeModel,
    features: Dense,
    batcher: DeltaBatcher,
    /// `1/√(1 + deg(u))` per vertex, maintained alongside the graph.
    isd: Vec<f32>,
    /// The current normalized operator.
    a_hat: Csr,
    /// Cached layer outputs over the current snapshot (`N × width_l`).
    acts: Vec<Dense>,
    version: u64,
}

impl InferenceSession {
    /// Opens a session over an empty graph of `features.rows()` vertices.
    pub fn new(model: ServeModel, features: Dense) -> Self {
        assert_eq!(
            features.cols(),
            model.input_f(),
            "feature width does not match the first layer"
        );
        let n = features.rows();
        let mut s = Self {
            model,
            features,
            batcher: DeltaBatcher::new(n),
            isd: vec![1.0; n],
            a_hat: Csr::empty(n, n),
            acts: Vec::new(),
            version: 0,
        };
        s.rebuild_full();
        s
    }

    /// Opens a session from a decoded checkpoint.
    pub fn from_checkpoint(cp: &Checkpoint, features: Dense) -> Result<Self, CheckpointError> {
        Ok(Self::new(ServeModel::from_checkpoint(cp)?, features))
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.features.rows()
    }

    /// Monotone snapshot version (bumped by every advance).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The live (symmetrized) graph state.
    pub fn graph(&self) -> &StreamingGraph {
        self.batcher.graph()
    }

    /// The serving model.
    pub fn model(&self) -> &ServeModel {
        &self.model
    }

    /// Final-layer embeddings over the current snapshot (`N × emb`).
    pub fn embeddings(&self) -> &Dense {
        self.acts.last().unwrap()
    }

    /// Ingests timestamped events (time-ordered, as a stream delivers
    /// them). Each event is an undirected interaction: it is applied to
    /// both `(u, v)` and `(v, u)`. Queries keep answering from the current
    /// snapshot until [`InferenceSession::advance`] closes the window.
    pub fn ingest(&mut self, events: &[EdgeEvent]) {
        for ev in events {
            self.batcher.apply(ev);
            if ev.src != ev.dst {
                self.batcher.apply(&EdgeEvent {
                    src: ev.dst,
                    dst: ev.src,
                    ..*ev
                });
            }
        }
    }

    /// Closes the window: refreshes the normalized operator rows invalidated
    /// by the ingested events and recomputes exactly the per-layer frontier
    /// of activation rows they can reach. Embeddings afterwards are
    /// bit-identical to [`InferenceSession::full_forward`].
    pub fn advance(&mut self) -> AdvanceReport {
        let _span = trace::span_cat("advance_incremental", "serve");
        let touched = self.batcher.touched_vertices();
        let diff = self.batcher.flush();
        self.version += 1;
        if touched.is_empty() {
            return AdvanceReport {
                version: self.version,
                diff,
                touched: 0,
                frontier_rows: vec![0; self.model.layers()],
            };
        }

        // Degrees changed only at touched vertices.
        for &u in &touched {
            self.isd[u as usize] = inv_sqrt_deg(self.batcher.graph().row(u), u);
        }

        // Ã rows needing rebuild: touched vertices and their (new)
        // neighborhood — a dropped edge's partner is itself touched.
        let dirty = self.expand_graph(&touched);
        self.refresh_lap_rows(&dirty);

        // Per-layer frontier recompute over the cached activations.
        let mut frontier = dirty;
        let mut frontier_rows = Vec::with_capacity(self.model.layers());
        for l in 0..self.model.layers() {
            frontier_rows.push(frontier.len());
            let input = if l == 0 {
                &self.features
            } else {
                &self.acts[l - 1]
            };
            let agg = self.a_hat.spmm_rows(input, &frontier);
            let rows = self.model.layers[l].forward_rows(&agg);
            self.acts[l].set_rows(&frontier, &rows);
            if l + 1 < self.model.layers() {
                frontier = self.expand_operator(&frontier);
            }
        }

        AdvanceReport {
            version: self.version,
            diff,
            touched: touched.len(),
            frontier_rows,
        }
    }

    /// Batched node-embedding lookup (`out[i] = Z[nodes[i]]`).
    pub fn predict_nodes(&self, nodes: &[u32]) -> Dense {
        self.embeddings().gather_rows(nodes)
    }

    /// Batched link scoring: positive-class logit margin per pair.
    pub fn score_links(&self, pairs: &[(u32, u32)]) -> Vec<f32> {
        score_links_with(
            &self.model.head_u,
            &self.model.head_b,
            self.embeddings(),
            pairs,
        )
    }

    /// The from-scratch reference: materializes the graph, builds the full
    /// normalized operator, and runs the whole forward. Returns every
    /// layer's activations. This is what the cached state is contractually
    /// bit-identical to after each advance.
    pub fn full_forward(&self) -> Vec<Dense> {
        let adj = self.batcher.graph().materialize();
        let n = adj.rows();
        // One scratch row buffer feeds the shared degree + row expressions
        // in both passes — no per-row allocations in this timed baseline.
        let mut row: Vec<(u32, f32)> = Vec::new();
        let mut isd = vec![0f32; n];
        for u in 0..n as u32 {
            row.clear();
            row.extend(adj.row_iter(u as usize));
            isd[u as usize] = inv_sqrt_deg(&row, u);
        }
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::with_capacity(adj.nnz() + n);
        let mut values = Vec::with_capacity(adj.nnz() + n);
        indptr.push(0);
        for u in 0..n as u32 {
            row.clear();
            row.extend(adj.row_iter(u as usize));
            push_lap_row(u, &row, &isd, &mut indices, &mut values);
            indptr.push(indices.len());
        }
        let a_full = Csr::from_parts(n, n, indptr, indices, values);

        let mut acts = Vec::with_capacity(self.model.layers());
        for l in 0..self.model.layers() {
            let input = if l == 0 { &self.features } else { &acts[l - 1] };
            let agg = a_full.spmm(input);
            acts.push(self.model.layers[l].forward_rows(&agg));
        }
        acts
    }

    /// Asserts the cached activations equal the from-scratch forward bit
    /// for bit (test/bench guard).
    pub fn assert_matches_full(&self) {
        let full = self.full_forward();
        for (l, (cached, fresh)) in self.acts.iter().zip(&full).enumerate() {
            assert_eq!(cached.shape(), fresh.shape(), "layer {l} shape");
            for (i, (a, b)) in cached.data().iter().zip(fresh.data()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "layer {l} diverges at flat index {i}: {a} vs {b}"
                );
            }
        }
    }

    /// Rebuilds the operator and every activation from scratch (session
    /// open, or a fallback if a caller ever needs to resynchronize).
    fn rebuild_full(&mut self) {
        let n = self.n();
        for u in 0..n as u32 {
            self.isd[u as usize] = inv_sqrt_deg(self.batcher.graph().row(u), u);
        }
        // Refreshing with every row dirty rebuilds the whole operator (the
        // stale one is empty, so the structural path is taken).
        let all: Vec<u32> = (0..n as u32).collect();
        self.refresh_lap_rows(&all);
        self.acts = self.full_forward();
    }

    /// `rows ∪ N(rows)` over the live graph's rows (sorted, deduplicated).
    fn expand_graph(&self, rows: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::with_capacity(rows.len() * 4);
        for &u in rows {
            out.push(u);
            out.extend(self.batcher.graph().row(u).iter().map(|&(c, _)| c));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `rows ∪ N(rows)` over the current operator's structure (sorted,
    /// deduplicated) — the per-layer frontier expansion.
    fn expand_operator(&self, rows: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::with_capacity(rows.len() * 4);
        for &u in rows {
            // The operator's row includes the self-loop, covering `u`.
            out.extend(self.a_hat.row_iter(u as usize).map(|(c, _)| c));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Refreshes the operator's `dirty` rows (sorted ascending) from the
    /// live graph.
    ///
    /// When no dirty row changes its column structure — weight-only churn,
    /// or degree-induced rescaling of neighbor rows, both of which leave
    /// sparsity untouched — the new values are patched **in place**, and
    /// the advance cost tracks the frontier instead of paying the
    /// O(n + nnz) whole-CSR splice. Structural edits fall back to the
    /// splice. Either path writes exactly the bytes [`push_lap_row`]
    /// produces, so the bitwise contract is unaffected.
    fn refresh_lap_rows(&mut self, dirty: &[u32]) {
        // Build every rebuilt row once, into one scratch arena.
        let mut scratch_idx: Vec<u32> = Vec::with_capacity(dirty.len() * 8);
        let mut scratch_val: Vec<f32> = Vec::with_capacity(dirty.len() * 8);
        let mut bounds: Vec<usize> = Vec::with_capacity(dirty.len() + 1);
        bounds.push(0);
        for &u in dirty {
            push_lap_row(
                u,
                self.batcher.graph().row(u),
                &self.isd,
                &mut scratch_idx,
                &mut scratch_val,
            );
            bounds.push(scratch_idx.len());
        }

        let structural = dirty.iter().enumerate().any(|(i, &u)| {
            let (lo, hi) = (
                self.a_hat.indptr()[u as usize],
                self.a_hat.indptr()[u as usize + 1],
            );
            self.a_hat.indices()[lo..hi] != scratch_idx[bounds[i]..bounds[i + 1]]
        });
        if !structural {
            let starts: Vec<usize> = dirty
                .iter()
                .map(|&u| self.a_hat.indptr()[u as usize])
                .collect();
            let values = self.a_hat.values_mut();
            for (i, &lo) in starts.iter().enumerate() {
                let (s, e) = (bounds[i], bounds[i + 1]);
                values[lo..lo + (e - s)].copy_from_slice(&scratch_val[s..e]);
            }
            return;
        }

        // Structural splice: one pass over the old operator, dirty rows
        // taken from the scratch arena.
        let n = self.n();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices: Vec<u32> = Vec::with_capacity(self.a_hat.nnz() + scratch_idx.len() + n);
        let mut values: Vec<f32> = Vec::with_capacity(indices.capacity());
        indptr.push(0);
        let mut d = 0usize;
        for u in 0..n as u32 {
            if d < dirty.len() && dirty[d] == u {
                let (s, e) = (bounds[d], bounds[d + 1]);
                d += 1;
                indices.extend_from_slice(&scratch_idx[s..e]);
                values.extend_from_slice(&scratch_val[s..e]);
            } else {
                let old_indptr = self.a_hat.indptr();
                let (lo, hi) = (old_indptr[u as usize], old_indptr[u as usize + 1]);
                indices.extend_from_slice(&self.a_hat.indices()[lo..hi]);
                values.extend_from_slice(&self.a_hat.values()[lo..hi]);
            }
            indptr.push(indices.len());
        }
        debug_assert_eq!(d, dirty.len(), "dirty rows must be sorted and in range");
        self.a_hat = Csr::from_parts(n, n, indptr, indices, values);
    }
}

/// `1/√(1 + deg(u))`, where `deg` counts stored non-self neighbors — the
/// `+1` is the operator's own self-loop. One shared expression for the
/// full and incremental paths.
fn inv_sqrt_deg(row: &[(u32, f32)], u: u32) -> f32 {
    let has_self = row.binary_search_by_key(&u, |&(c, _)| c).is_ok();
    let deg = 1 + row.len() - usize::from(has_self);
    1.0 / (deg as f32).sqrt()
}

/// Appends row `u` of the normalized operator: every stored non-self
/// neighbor scaled by `isd[u]·isd[v]`, plus the unit self-loop scaled by
/// `isd[u]²`, in column order. Stored self-loops are ignored — the
/// operator supplies the canonical unit one. One shared expression for
/// the full and incremental paths.
fn push_lap_row(
    u: u32,
    row: &[(u32, f32)],
    isd: &[f32],
    indices: &mut Vec<u32>,
    values: &mut Vec<f32>,
) {
    let su = isd[u as usize];
    let mut diag_done = false;
    for &(c, w) in row {
        if c == u {
            continue;
        }
        if !diag_done && c > u {
            indices.push(u);
            values.push(su * su);
            diag_done = true;
        }
        indices.push(c);
        values.push(w * (su * isd[c as usize]));
    }
    if !diag_done {
        indices.push(u);
        values.push(su * su);
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A deterministic two-layer model (no RNG: fixed pseudo-pattern).
    pub(crate) fn tiny_model(input_f: usize, hidden: usize, skip: bool) -> ServeModel {
        let w = |rows: usize, cols: usize, salt: usize| {
            Dense::from_fn(rows, cols, |r, c| {
                ((r * 31 + c * 17 + salt * 7) % 13) as f32 / 13.0 - 0.5
            })
        };
        let l0 = ServeLayer {
            w: w(input_f, hidden, 1),
            b: Dense::full(1, hidden, 0.05),
            skip_concat: skip,
        };
        let l1 = ServeLayer {
            w: w(l0.out_width(), hidden, 2),
            b: Dense::full(1, hidden, 0.05),
            skip_concat: skip,
        };
        let emb = l1.out_width();
        ServeModel::from_parts(vec![l0, l1], w(2 * emb, 2, 3), Dense::zeros(1, 2))
    }

    fn feats(n: usize, f: usize) -> Dense {
        Dense::from_fn(n, f, |r, c| ((r * 13 + c * 5) % 11) as f32 / 11.0)
    }

    #[test]
    fn empty_graph_forward_is_identity_operator() {
        let s = InferenceSession::new(tiny_model(3, 4, false), feats(6, 3));
        // With no edges Ã = I: layer 0 equals relu(X·W + b) exactly.
        let expect = relu(
            &feats(6, 3)
                .matmul(&s.model.layers[0].w)
                .add_row_broadcast(&s.model.layers[0].b),
        );
        assert_eq!(s.acts[0], expect);
        s.assert_matches_full();
    }

    #[test]
    fn single_advance_matches_full_forward() {
        for skip in [false, true] {
            let mut s = InferenceSession::new(tiny_model(3, 4, skip), feats(8, 3));
            s.ingest(&[
                EdgeEvent::add(0, 0, 1, 1.0),
                EdgeEvent::add(0, 1, 2, 0.5),
                EdgeEvent::add(0, 5, 6, 2.0),
            ]);
            let report = s.advance();
            assert_eq!(report.version, 1);
            assert_eq!(report.touched, 5);
            // Frontiers grow (weakly) layer over layer.
            assert!(report.frontier_rows[0] <= report.frontier_rows[1]);
            s.assert_matches_full();
        }
    }

    #[test]
    fn removals_and_weight_updates_stay_consistent() {
        let mut s = InferenceSession::new(tiny_model(2, 3, false), feats(10, 2));
        s.ingest(&[
            EdgeEvent::add(0, 0, 1, 1.0),
            EdgeEvent::add(0, 1, 2, 1.0),
            EdgeEvent::add(0, 2, 3, 1.0),
            EdgeEvent::add(0, 8, 9, 1.0),
        ]);
        s.advance();
        s.assert_matches_full();
        s.ingest(&[
            EdgeEvent::remove(1, 1, 2),
            EdgeEvent::update(1, 0, 1, 4.0),
            EdgeEvent::add(1, 3, 4, 1.0),
        ]);
        let r = s.advance();
        assert_eq!(r.version, 2);
        s.assert_matches_full();
        // The untouched far component (8, 9) was not recomputed.
        assert!(!r.frontier_rows.is_empty());
        assert!(r.frontier_rows.iter().all(|&f| f < 10));
    }

    #[test]
    fn unservable_heads_are_refused_with_typed_errors() {
        use dgnn_models::ModelConfig;
        let cfg = ModelConfig {
            kind: ModelKind::TmGcn,
            input_f: 2,
            hidden: 3,
            mprod_window: 2,
            smoothing_window: 2,
        };
        let mk = |head_u: Dense, head_b: Dense| Checkpoint {
            config: cfg,
            head_emb: 3,
            head_classes: head_u.cols(),
            params: vec![
                ("gcn0.w".into(), Dense::zeros(2, 3)),
                ("gcn0.b".into(), Dense::zeros(1, 3)),
                ("gcn1.w".into(), Dense::zeros(3, 3)),
                ("gcn1.b".into(), Dense::zeros(1, 3)),
                ("head.u".into(), head_u),
                ("head.b".into(), head_b),
            ],
        };
        // A single-class head cannot produce a link-score margin.
        let cp = mk(Dense::zeros(6, 1), Dense::zeros(1, 1));
        assert!(matches!(
            ServeModel::from_checkpoint(&cp),
            Err(CheckpointError::UnsupportedModel(_))
        ));
        // A bias whose width disagrees with the projection.
        let cp = mk(Dense::zeros(6, 2), Dense::zeros(1, 3));
        assert!(matches!(
            ServeModel::from_checkpoint(&cp),
            Err(CheckpointError::UnsupportedModel(_))
        ));
        // The consistent two-class head is accepted.
        let cp = mk(Dense::zeros(6, 2), Dense::zeros(1, 2));
        assert!(ServeModel::from_checkpoint(&cp).is_ok());
    }

    #[test]
    fn weight_only_windows_patch_values_in_place() {
        let mut s = InferenceSession::new(tiny_model(2, 3, false), feats(12, 2));
        s.ingest(&[
            EdgeEvent::add(0, 0, 1, 1.0),
            EdgeEvent::add(0, 1, 2, 1.0),
            EdgeEvent::add(0, 5, 6, 1.0),
        ]);
        s.advance();
        let structure_before: Vec<usize> = s.a_hat.indptr().to_vec();
        // Pure weight churn: sparsity is untouched, so the fast path runs
        // (observable as identical indptr) and the bits still match a full
        // recompute.
        s.ingest(&[
            EdgeEvent::update(1, 0, 1, 3.5),
            EdgeEvent::update(1, 5, 6, 0.125),
        ]);
        s.advance();
        assert_eq!(s.a_hat.indptr(), &structure_before[..]);
        s.assert_matches_full();
        // A reverted add/remove pair inside one window is also value-only.
        s.ingest(&[EdgeEvent::remove(2, 1, 2), EdgeEvent::add(2, 1, 2, 9.0)]);
        s.advance();
        s.assert_matches_full();
    }

    #[test]
    fn empty_advance_bumps_version_only() {
        let mut s = InferenceSession::new(tiny_model(2, 3, false), feats(4, 2));
        let before = s.embeddings().clone();
        let r = s.advance();
        assert_eq!(r.version, 1);
        assert_eq!(r.touched, 0);
        assert_eq!(s.embeddings(), &before);
    }

    #[test]
    fn self_loop_events_are_tolerated() {
        let mut s = InferenceSession::new(tiny_model(2, 3, false), feats(5, 2));
        s.ingest(&[EdgeEvent::add(0, 2, 2, 3.0), EdgeEvent::add(0, 0, 1, 1.0)]);
        s.advance();
        // Stored self-loops are ignored by the operator (unit loop wins).
        s.assert_matches_full();
    }

    #[test]
    fn scores_are_head_logit_margins() {
        let mut s = InferenceSession::new(tiny_model(2, 3, false), feats(6, 2));
        s.ingest(&[EdgeEvent::add(0, 0, 1, 1.0)]);
        s.advance();
        let scores = s.score_links(&[(0, 1), (3, 4)]);
        assert_eq!(scores.len(), 2);
        let z = s.predict_nodes(&[0, 1]);
        let cat = z.row_block(0, 1).concat_cols(&z.row_block(1, 1));
        let logits = cat
            .matmul(&s.model.head_u)
            .add_row_broadcast(&s.model.head_b);
        let manual = logits.get(0, 1) - logits.get(0, 0);
        assert_eq!(scores[0].to_bits(), manual.to_bits());
    }
}
