//! Stress test of concurrent serving, modeled on
//! `crates/sim/tests/collectives_stress.rs`: one writer ingests windows
//! and publishes snapshots while several reader threads hammer the
//! batched query API with live intra-rank thread pools. Every read must
//! observe one coherent published snapshot — version, clock, embeddings,
//! and digest all from the same advance (no torn reads) — and versions
//! must be monotone per reader.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use dgnn_serve::{snapshot_digest, InferenceServer, InferenceSession, ServeLayer, ServeModel};
use dgnn_stream::EdgeEvent;
use dgnn_tensor::{pool, Dense};

const N: usize = 120;
const WINDOWS: u64 = 30;

fn model() -> ServeModel {
    let mat = |rows: usize, cols: usize, salt: usize| {
        Dense::from_fn(rows, cols, |r, c| {
            ((r * 23 + c * 7 + salt * 13) % 17) as f32 / 17.0 - 0.5
        })
    };
    let l0 = ServeLayer {
        w: mat(4, 8, 1),
        b: Dense::full(1, 8, 0.02),
        skip_concat: false,
    };
    let l1 = ServeLayer {
        w: mat(8, 8, 2),
        b: Dense::full(1, 8, -0.01),
        skip_concat: false,
    };
    ServeModel::from_parts(vec![l0, l1], mat(16, 2, 3), Dense::zeros(1, 2))
}

/// The deterministic event batch of window `w` (mixed adds / removes /
/// weight updates over a bounded vertex set).
fn window_events(w: u64) -> Vec<EdgeEvent> {
    (0..12u32)
        .flat_map(|i| {
            let u = (i * 31 + w as u32 * 17) % N as u32;
            let v = (u * 7 + i + 1) % N as u32;
            match (w as u32 + i) % 3 {
                0 => vec![EdgeEvent::add(w, u, v, 1.0 + i as f32 / 8.0)],
                1 => vec![
                    EdgeEvent::add(w, u, v, 0.5),
                    EdgeEvent::remove(w, v % N as u32, (v * 3 + 1) % N as u32),
                ],
                _ => vec![EdgeEvent::update(w, u, v, 2.0)],
            }
        })
        .collect()
}

#[test]
fn concurrent_queries_never_see_torn_snapshots() {
    let session = InferenceSession::new(
        model(),
        Dense::from_fn(N, 4, |r, c| ((r * 11 + c * 3) % 7) as f32 / 7.0),
    );
    let server = Arc::new(InferenceServer::new(session));
    let done = Arc::new(AtomicBool::new(false));
    // version -> digest, recorded by the writer at publication.
    let ledger = Arc::new(Mutex::new(vec![(0u64, server.snapshot().digest)]));

    let writer = {
        let server = Arc::clone(&server);
        let done = Arc::clone(&done);
        let ledger = Arc::clone(&ledger);
        thread::spawn(move || {
            let _threads = pool::scoped_threads(Some(2));
            for w in 1..=WINDOWS {
                let report = server.ingest_and_advance(&window_events(w));
                assert_eq!(report.version, w, "windows publish in order");
                let snap = server.snapshot();
                ledger.lock().unwrap().push((snap.version, snap.digest));
            }
            done.store(true, Ordering::Release);
        })
    };

    let readers: Vec<_> = (0..3)
        .map(|reader| {
            let server = Arc::clone(&server);
            let done = Arc::clone(&done);
            let ledger = Arc::clone(&ledger);
            thread::spawn(move || {
                // Oversubscribed on purpose: reader pools contend with the
                // writer's recompute pool.
                let _threads = pool::scoped_threads(Some(2));
                let mut last_version = 0u64;
                let mut reads = 0usize;
                while !done.load(Ordering::Acquire) || reads == 0 {
                    let snap = server.snapshot();
                    // Coherence: the carried digest matches the data, and
                    // matches what the writer recorded for this version.
                    assert_eq!(
                        snap.recompute_digest(),
                        snap.digest,
                        "reader {reader}: torn snapshot at version {}",
                        snap.version
                    );
                    if let Some(&(_, recorded)) = ledger
                        .lock()
                        .unwrap()
                        .iter()
                        .find(|&&(v, _)| v == snap.version)
                    {
                        assert_eq!(
                            recorded, snap.digest,
                            "reader {reader}: version {} does not match the writer's ledger",
                            snap.version
                        );
                    }
                    // Monotonicity: published versions never go backwards.
                    assert!(
                        snap.version >= last_version,
                        "reader {reader}: version regressed {last_version} -> {}",
                        snap.version
                    );
                    last_version = snap.version;

                    // Batched queries on the frozen snapshot agree with a
                    // serial recomputation from the same snapshot.
                    let nodes: Vec<u32> = (0..16u32)
                        .map(|i| (i * 13 + reader as u32) % N as u32)
                        .collect();
                    let z = snap.predict_nodes(&nodes);
                    for (i, &u) in nodes.iter().enumerate() {
                        assert_eq!(
                            z.row(i),
                            snap.embeddings.row(u as usize),
                            "reader {reader}: gathered row mismatch"
                        );
                    }
                    let pairs: Vec<(u32, u32)> =
                        nodes.iter().map(|&u| (u, (u + 5) % N as u32)).collect();
                    let scores = snap.score_links(&pairs);
                    let again = snap.score_links(&pairs);
                    assert_eq!(
                        scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                        again.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                        "reader {reader}: scoring the same snapshot twice diverged"
                    );
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    writer.join().expect("writer panicked");
    for r in readers {
        let reads = r.join().expect("reader panicked");
        assert!(reads > 0, "reader made no reads");
    }

    // Final state: the last published snapshot is the last window, its
    // digest re-derives, and the session still matches a full recompute.
    let snap = server.snapshot();
    assert_eq!(snap.version, WINDOWS);
    assert_eq!(
        snapshot_digest(snap.version, snap.clock, &snap.embeddings),
        snap.digest
    );
}
