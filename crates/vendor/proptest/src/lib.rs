//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro, range/tuple/vec strategies, `prop_map`,
//! `any::<bool>()`, and the `prop_assert*` macros.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: each test case is generated from a deterministic per-case seed,
//! so failures reproduce exactly across runs, and the failing case index
//! is printed by the panic message of the underlying `assert!`.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_inclusive_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Rng, StdRng, Strategy};

    /// A length specification: an exact size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.lo + 1 >= self.len.hi {
                self.len.lo
            } else {
                rng.gen_range(self.len.lo..self.len.hi)
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `len` (an exact size or a
    /// range) and whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    // Deterministic per-test, per-case seed (FNV-1a over the test name).
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37))
}

/// Runs each contained `#[test]` function over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::__case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` under a name the real proptest exports.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a name the real proptest exports.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a name the real proptest exports.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -1.0f32..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(
            v in crate::collection::vec(0u8..10, 2..6),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            // `any::<bool>()` must produce a plain bool usable in a branch.
            let seen: u8 = u8::from(flag);
            prop_assert!(seen <= 1);
        }

        #[test]
        fn prop_map_applies(
            d in crate::collection::vec(0u32..5, 3..4).prop_map(|v| v.len()),
        ) {
            prop_assert_eq!(d, 3);
        }
    }
}
