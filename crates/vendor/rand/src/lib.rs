//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle`.
//!
//! The build environment has no registry access, so the real crate cannot
//! be fetched; this shim keeps the public surface source-compatible. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! under a seed and statistically strong enough for the workloads and
//! property tests in this repository. Streams differ from the real
//! `StdRng` (ChaCha12), which no test relies on.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is < span / 2^64 — irrelevant at these spans.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every u64 is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f32(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        lo + unit_f32(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic seedable generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

/// Slice helpers (`shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniformity_rough_chi_square() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
