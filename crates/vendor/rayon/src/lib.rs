//! Offline stand-in for the subset of the `rayon` API this workspace uses:
//! a persistent [`ThreadPool`] with [`ThreadPool::parallel_for`] (dynamic
//! chunk claiming over an index range), [`ThreadPool::par_chunks_mut`]
//! (disjoint mutable chunks of a slice), and [`ThreadPool::join`].
//!
//! The pool is deliberately simpler than real rayon — one job at a time,
//! no per-worker deques — but keeps the property that matters here:
//! workers *claim* chunks from a shared atomic counter, so load balances
//! dynamically, while each chunk maps to a fixed index range. Callers that
//! assign disjoint output regions per chunk therefore get results that do
//! not depend on which worker ran which chunk.
//!
//! Workers are spawned once and parked on a condvar between jobs, so a
//! kernel-sized dispatch costs two lock round-trips rather than thread
//! spawns. Nested parallelism degrades gracefully: a `parallel_for` issued
//! from inside a running job (from a worker, or from the submitting thread
//! while it participates) runs inline on the calling thread.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// True while the current thread is executing inside a pool job — either
/// as a worker or as the submitting thread participating in its own job.
/// Parallel entry points use this to run nested work inline.
pub fn in_parallel() -> bool {
    IN_POOL.with(|c| c.get())
}

/// RAII guard for the IN_POOL flag: restores the previous value on drop,
/// including during unwinding, so a panicking job cannot leave the thread
/// permanently marked as inside a pool (which would silently serialize
/// every later dispatch on it).
struct InPoolGuard {
    prev: bool,
}

fn enter_parallel() -> InPoolGuard {
    InPoolGuard {
        prev: IN_POOL.with(|c| c.replace(true)),
    }
}

impl Drop for InPoolGuard {
    fn drop(&mut self) {
        IN_POOL.with(|c| c.set(self.prev));
    }
}

/// Shared-pointer wrapper for disjoint-region parallel writes. The caller
/// must guarantee that concurrent users write non-overlapping positions;
/// the `Send`/`Sync` impls are sound only under that contract. Exported so
/// kernels building scatter phases (e.g. the partitioned CSR transpose)
/// reuse one audited wrapper instead of re-rolling the unsafe impls.
pub struct SendPtr<T>(*mut T);

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wraps a base pointer for disjoint concurrent writes.
    pub fn new(ptr: *mut T) -> Self {
        Self(ptr)
    }

    /// The wrapped pointer. A method (rather than pub field access) so
    /// closures capture the whole wrapper, never the raw `*mut T`.
    pub fn ptr(&self) -> *mut T {
        self.0
    }
}

/// A dispatched job: a borrowed closure plus the shared chunk counter.
/// The raw pointers borrow the submitting thread's stack; soundness rests
/// on `parallel_for` not returning until every worker has finished the job
/// (`running == 0`), which the `done` condvar enforces.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    next: *const AtomicUsize,
    chunks: usize,
}

// The pointers are only dereferenced while the owning `parallel_for` frame
// is blocked waiting for job completion.
unsafe impl Send for Job {}

struct State {
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current job.
    running: usize,
    /// First panic payload raised by a worker during the current job; the
    /// submitter re-raises it once every thread has stopped touching the
    /// job's borrows.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers that a new job (or shutdown) is available.
    work: Condvar,
    /// Signals the submitter that all workers finished the current job.
    done: Condvar,
}

/// A fixed-size pool of persistent worker threads. The thread that calls
/// [`ThreadPool::parallel_for`] participates in the job, so a pool of
/// `num_threads` executes on `num_threads` threads total while spawning
/// only `num_threads - 1` workers.
pub struct ThreadPool {
    shared: std::sync::Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool that executes jobs on `num_threads` threads
    /// (including the submitting thread). `num_threads <= 1` spawns no
    /// workers and every job runs inline.
    pub fn new(num_threads: usize) -> Self {
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                running: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..num_threads.max(1))
            .map(|i| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dgnn-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Total threads this pool executes on (workers + the submitter).
    pub fn num_threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `f(i)` for every `i in 0..chunks`, distributing chunks across
    /// the pool by atomic claiming. Returns after every invocation has
    /// completed. Runs inline when the pool has no workers, when `chunks`
    /// is at most 1, or when called from inside another job.
    pub fn parallel_for(&self, chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if self.workers.is_empty() || chunks <= 1 || in_parallel() {
            let _guard = enter_parallel();
            for i in 0..chunks {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        // Erase the borrow lifetimes: the raw pointers outlive their use
        // because this frame blocks until `running == 0` below.
        let f_erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        let job = Job {
            f: f_erased,
            next: &next,
            chunks,
        };
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(st.job.is_none(), "pool already has a job in flight");
            st.job = Some(job);
            st.epoch += 1;
            st.running = self.workers.len();
            self.shared.work.notify_all();
        }
        // Participate: claim chunks alongside the workers. Panics are
        // caught so this frame stays alive (the job borrows it) until every
        // worker has finished, then re-raised.
        let mine = {
            let _guard = enter_parallel();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= chunks {
                    break;
                }
                f(i);
            }))
        };
        // Wait for the workers; the job borrows this stack frame.
        let worker_panic = {
            let mut st = self.shared.state.lock().unwrap();
            while st.running > 0 {
                st = self.shared.done.wait(st).unwrap();
            }
            st.job = None;
            st.panic.take()
        };
        if let Err(p) = mine {
            std::panic::resume_unwind(p);
        }
        if let Some(p) = worker_panic {
            std::panic::resume_unwind(p);
        }
    }

    /// Splits `data` into contiguous chunks of `chunk_len` elements (the
    /// last may be shorter) and runs `f(chunk_index, chunk)` across the
    /// pool. Chunk boundaries depend only on `chunk_len`, never on which
    /// worker claims a chunk.
    pub fn par_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let len = data.len();
        let chunks = len.div_ceil(chunk_len);
        if chunks <= 1 || self.workers.is_empty() || in_parallel() {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            return;
        }
        // Chunks are disjoint by construction, so handing each claimed
        // index exclusive access to its own sub-slice is sound.
        let base = SendPtr::new(data.as_mut_ptr());
        self.parallel_for(chunks, &|i| {
            let start = i * chunk_len;
            let end = (start + chunk_len).min(len);
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), end - start) };
            f(i, chunk);
        });
    }

    /// Runs `a` and `b`, potentially in parallel, returning both results.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        if self.workers.is_empty() || in_parallel() {
            return (a(), b());
        }
        let fa = Mutex::new(Some(a));
        let fb = Mutex::new(Some(b));
        let ra = Mutex::new(None);
        let rb = Mutex::new(None);
        self.parallel_for(2, &|i| {
            if i == 0 {
                let f = fa.lock().unwrap().take().expect("join side 0 ran twice");
                *ra.lock().unwrap() = Some(f());
            } else {
                let f = fb.lock().unwrap().take().expect("join side 1 ran twice");
                *rb.lock().unwrap() = Some(f());
            }
        });
        (
            ra.into_inner().unwrap().expect("join side 0 never ran"),
            rb.into_inner().unwrap().expect("join side 1 never ran"),
        )
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IN_POOL.with(|c| c.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = st.job {
                        seen_epoch = st.epoch;
                        break job;
                    }
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        // Claim chunks until the range is exhausted. The pointers are live:
        // the submitter blocks until `running` drops to zero below. A panic
        // in the closure is parked for the submitter to re-raise — the
        // worker must still decrement `running` or the submitter deadlocks.
        let f = unsafe { &*job.f };
        let next = unsafe { &*job.next };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= job.chunks {
                break;
            }
            f(i);
        }));
        let mut st = shared.state.lock().unwrap();
        if let Err(p) = result {
            st.panic.get_or_insert(p);
        }
        st.running -= 1;
        if st.running == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(1000, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_chunks() {
        for threads in [1, 2, 5] {
            let pool = ThreadPool::new(threads);
            let mut data = vec![0u32; 103];
            pool.par_chunks_mut(&mut data, 10, |ci, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (ci * 10 + j) as u32;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
        }
    }

    #[test]
    fn pool_survives_many_jobs() {
        let pool = ThreadPool::new(3);
        let counter = AtomicU64::new(0);
        for _ in 0..200 {
            pool.parallel_for(7, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1400);
    }

    #[test]
    fn nested_parallel_for_runs_inline() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.parallel_for(4, &|_| {
            // Re-entrant dispatch must not deadlock on the single job slot.
            pool.parallel_for(5, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 6 * 7, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.num_threads(), 1);
        let mut data = vec![0u8; 16];
        pool.par_chunks_mut(&mut data, 4, |ci, chunk| {
            for v in chunk {
                *v = ci as u8;
            }
        });
        assert_eq!(&data[..5], &[0, 0, 0, 0, 1]);
    }

    #[test]
    fn panic_in_job_propagates_and_pool_stays_usable() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Enough chunks that workers certainly participate; every chunk
            // panics, so whichever thread runs one raises.
            pool.parallel_for(64, &|_| panic!("boom"));
        }));
        assert!(result.is_err());
        let counter = AtomicU64::new(0);
        pool.parallel_for(64, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }
}
