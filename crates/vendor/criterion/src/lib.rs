//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. It runs each benchmark closure for a bounded wall-clock budget and
//! prints a mean time per iteration — no statistics, plots, or baselines,
//! but `cargo bench` works and catches gross regressions by eye.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Label of a parameterised benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// A label holding just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly inside the measurement budget.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One warmup call, then timed iterations until the budget runs out
        // (always at least one).
        std::hint::black_box(f());
        let start = Instant::now();
        loop {
            std::hint::black_box(f());
            self.iters_done += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.budget {
                break;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _c: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.budget, f);
        self
    }

    /// Runs one benchmark with an input payload.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.budget, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; output is printed as benchmarks run).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, budget: Duration, mut f: F) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        budget,
    };
    f(&mut b);
    let per_iter = if b.iters_done == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iters_done as u32
    };
    println!(
        "bench {label:<48} {:>12.3?}/iter ({} iters)",
        per_iter, b.iters_done
    );
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {
    budget: Option<Duration>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let budget = self.budget.unwrap_or(Duration::from_millis(500));
        BenchmarkGroup {
            name: name.into(),
            budget,
            _c: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.budget.unwrap_or(Duration::from_millis(500));
        run_one(name, budget, f);
        self
    }
}

/// Re-export matching criterion's hint.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
