//! Offline stand-in for the subset of the `crossbeam` API this workspace
//! uses: `channel::{unbounded, Sender, Receiver}` and `thread::scope`.
//!
//! Channels delegate to `std::sync::mpsc`; scoped threads delegate to
//! `std::thread::scope` (stable since Rust 1.63), which provides the same
//! borrow-the-stack guarantee crossbeam pioneered.

/// Multi-producer channels (std-backed).
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; errors only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors when every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks for at most `timeout` waiting for a message. Lets
        /// receivers interleave waiting with checking an out-of-band
        /// condition (e.g. a peer-failure flag) instead of blocking
        /// indefinitely on a peer that will never send.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped threads (std-backed).
pub mod thread {
    /// Handle to the scope, passed to every spawned closure. The callbacks
    /// in this workspace ignore it (`|_|`), so no nested-spawn capability
    /// is exposed; spawn nested work from the scope object itself.
    pub struct ScopeHandle;

    /// A spawn surface tied to a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle joining a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from outside the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(ScopeHandle) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(ScopeHandle)),
            }
        }
    }

    /// Runs `f` with a scope whose threads are all joined before returning.
    ///
    /// Matches crossbeam's signature: the result is `Ok` unless a spawned
    /// thread panicked *and* its handle was never joined (std's scope
    /// re-raises such panics, so in practice this always returns `Ok` or
    /// propagates the panic).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1u32).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn scope_joins_threads_and_borrows_stack() {
        let data = [1u64, 2, 3, 4];
        let sums = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<u64>>()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }
}
