//! Experiment E3 — paper Figure 5: strong scaling of the GD-endowed
//! implementation, with the execution time split into snapshot transfer,
//! computation and communication.
//!
//! Expected shape (paper §6.3): computation scales well for every model;
//! communication becomes the bottleneck for TM-GCN and CD-GCN at high P
//! with a visible dip when crossing the node boundary at P = 16; EvolveGCN
//! is communication-free. Speedups reach tens of x at P = 128 (the paper
//! reports up to 30x). Following the paper, when P = 1 cannot execute the
//! smallest feasible P is the reference and its speedup is taken as P.

use dgnn_graph::datasets::paper_datasets;
use dgnn_sim::perf::{tune_nb, ModelKind, PerfConfig};

use crate::{ms, smoothing_for, P_SWEEP};

/// Runs the Figure 5 harness. `fast` restricts the sweep.
pub fn run(fast: bool) {
    println!("== Figure 5: strong scaling (with GD transfer) ==");
    let sweep: &[usize] = if fast { &[1, 8, 16, 128] } else { &P_SWEEP };
    for model in ModelKind::all() {
        let mut summary: Vec<(String, Vec<(usize, f64)>)> = Vec::new();
        for spec in paper_datasets() {
            println!("\n-- {} / {} --", model.name(), spec.name);
            println!(
                "{:>4} {:>3} {:>10} {:>10} {:>10} {:>10} {:>9}",
                "P", "nb", "transfer", "compute", "comm", "total", "mem"
            );
            let stats = spec.stats(smoothing_for(model, &spec));
            let mut reference: Option<(usize, f64)> = None;
            let mut speedups = Vec::new();
            for &p in sweep {
                let cfg = PerfConfig::new(model, stats.clone(), p, 1);
                match tune_nb(&cfg) {
                    Some((nb, r)) => {
                        println!(
                            "{p:>4} {nb:>3} {:>10} {:>10} {:>10} {:>10} {:>9}",
                            ms(r.all_transfer_ms()),
                            ms(r.compute_ms),
                            ms(r.comm_ms),
                            ms(r.total_ms()),
                            crate::gib(r.peak_mem_bytes),
                        );
                        let total = r.total_ms();
                        if reference.is_none() {
                            reference = Some((p, total));
                        }
                        let (p_ref, t_ref) = reference.unwrap();
                        // Paper convention: the reference point's speedup is
                        // taken as P_ref.
                        speedups.push((p, t_ref / total * p_ref as f64));
                    }
                    None => println!("{p:>4}     {:>10}", "OOM"),
                }
            }
            summary.push((spec.name.to_string(), speedups));
        }
        println!(
            "\n-- {} speedup summary (reference speedup = P_ref) --",
            model.name()
        );
        print!("{:<10}", "dataset");
        for &p in sweep {
            print!(" {p:>7}");
        }
        println!();
        for (name, speedups) in &summary {
            print!("{name:<10}");
            let mut cursor = speedups.iter();
            let mut next = cursor.next();
            for &p in sweep {
                match next {
                    Some(&(sp, s)) if sp == p => {
                        print!(" {s:>6.1}x");
                        next = cursor.next();
                    }
                    _ => print!(" {:>7}", "-"),
                }
            }
            println!();
        }
    }
    println!("\npaper reference: up to 30x speedup at P=128; dip at the node boundary (P=16).");
}
