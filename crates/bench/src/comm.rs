//! Multi-rank transport benchmark: measured epochs on the real
//! shared-memory communicator vs the `SimComm` mailbox vs the §7
//! analytical model, recorded to `BENCH_comm.json`.
//!
//! For each rank count in {1, 2, 4} the same snapshot-partitioned
//! training run executes on **both** transports with tracing on, and the
//! harness asserts the transport contract outright: loss streams, comm
//! byte accounting, and final parameter replicas are bit-identical
//! between `SimComm` and `SharedMemComm` (and across rank replicas).
//!
//! The §7 validation then compares the *measured* multi-rank epoch —
//! wall time, traced compute (engine phase spans), and traced collective
//! time — against [`estimate_epoch`]'s per-phase split, and records the
//! relative model-vs-real error per phase. The machine constants are
//! calibrated for the paper's V100 cluster, not this host's CPU threads,
//! so the error columns are recorded for trend tracking; what is
//! asserted everywhere is that both sides are finite and positive, plus
//! — on hosts with ≥ 4 cores, where rank threads genuinely overlap — a
//! nonzero traced comm/wait attribution at p ≥ 2 on both transports.

use std::time::Instant;

use dgnn_core::prelude::*;
use dgnn_graph::stats::TemporalStats;
use dgnn_sim::{scoped_transport, CommTransport};
use dgnn_telemetry::trace;
use dgnn_tensor::pool;

use crate::report::BenchReport;

/// One transport's measured run at a given rank count.
struct Measured {
    epoch_ms: f64,
    compute_ms: f64,
    comm_ms: f64,
    wait_ms: f64,
    loss_bits: Vec<u64>,
    comm_bytes: u64,
    param_digests: Vec<u64>,
}

fn run_once(
    transport: CommTransport,
    p: usize,
    raw: &dgnn_graph::DynamicGraph,
    next: &dgnn_graph::Snapshot,
    cfg: ModelConfig,
    opts: &TrainOptions,
) -> Measured {
    let _t = scoped_transport(transport);
    let task_opts = TaskOptions::default();
    let start = Instant::now();
    let (stats, param_digests) = train_distributed_digest(raw, next, cfg, &task_opts, opts, p);
    let epoch_ms = start.elapsed().as_secs_f64() * 1e3 / opts.epochs as f64;
    // Drain the span buffer between runs; the breakdown already landed in
    // the per-epoch stats.
    let _ = trace::take_events();
    let per_epoch = |f: fn(&EpochStats) -> u64| {
        stats.iter().map(f).sum::<u64>() as f64 / 1e3 / stats.len() as f64
    };
    Measured {
        epoch_ms,
        compute_ms: per_epoch(|s| s.phase.busy_us()),
        comm_ms: per_epoch(|s| s.phase.comm_us),
        wait_ms: per_epoch(|s| s.phase.comm_wait_us),
        loss_bits: stats.iter().map(|s| s.loss.to_bits()).collect(),
        comm_bytes: stats.iter().map(|s| s.comm_bytes).sum(),
        param_digests,
    }
}

fn rel_err(measured: f64, model: f64) -> f64 {
    (measured - model).abs() / model
}

/// Runs the transport benchmark + §7 validation. `fast` shrinks the
/// workload for the CI smoke step.
pub fn run(fast: bool) {
    let (n, t, m, epochs) = if fast {
        (1024, 8, 6_000, 2)
    } else {
        (4096, 8, 24_000, 3)
    };
    let nb = 2usize;
    trace::set_enabled(true);
    trace::clear();

    // TM-GCN: the M-product window makes the temporal phase communicate
    // (snapshot redistribution), so comm spans carry real payload bytes.
    let cfg = ModelConfig {
        kind: ModelKind::TmGcn,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    };
    println!("== Comm transports: n={n}, T={t}, m={m}, nb={nb}, TM-GCN ==");
    let g = dgnn_graph::gen::churn_skewed(n, t + 1, m, 0.3, 0.9, 17);
    let raw = g.time_slice(0, t);
    let next = g.snapshot(t).clone();
    let tstats = TemporalStats::from_graph(&raw);
    let opts = TrainOptions {
        epochs,
        lr: 0.05,
        nb,
        seed: 7,
        threads: None,
    };
    let capable = pool::host_parallelism() >= 4;

    let mut rep = BenchReport::new("comm");
    rep.config_bool("fast", fast)
        .config_u64("n", n as u64)
        .config_u64("t", t as u64)
        .config_u64("edges_per_snapshot", m as u64)
        .config_u64("nb", nb as u64)
        .config_u64("epochs", epochs as u64)
        .config_str("model", "tmgcn")
        .config_bool("perf_asserted", capable);

    for p in [1usize, 2, 4] {
        let sim = run_once(CommTransport::Sim, p, &raw, &next, cfg, &opts);
        let shm = run_once(CommTransport::SharedMem, p, &raw, &next, cfg, &opts);

        // The transport contract, asserted on every host: bit-identical
        // losses, identical byte accounting, and agreeing replicas.
        assert_eq!(
            sim.loss_bits, shm.loss_bits,
            "p={p}: loss streams diverge between transports"
        );
        assert_eq!(
            sim.comm_bytes, shm.comm_bytes,
            "p={p}: transports disagree on comm volume"
        );
        assert_eq!(
            sim.param_digests, shm.param_digests,
            "p={p}: final parameters diverge between transports"
        );
        assert!(
            shm.param_digests.iter().all(|d| *d == shm.param_digests[0]),
            "p={p}: rank replicas diverged"
        );

        // §7 model vs the real-transport measurement, per phase.
        let model = estimate_epoch(&PerfConfig::new(
            dgnn_sim::ModelKind::TmGcn,
            tstats.clone(),
            p,
            nb,
        ));
        let total_err = rel_err(shm.epoch_ms, model.total_ms());
        let compute_err = rel_err(shm.compute_ms, model.compute_ms);
        let comm_err = if p > 1 {
            rel_err(shm.comm_ms, model.comm_ms)
        } else {
            0.0
        };
        println!(
            "p={p}: sim {:.1} ms/epoch, shm {:.1} ms/epoch (comm {:.2} ms, wait {:.2} ms); \
             model {:.3} ms (compute {:.3}, comm {:.3}) -> rel err total x{:.0}, compute x{:.0}",
            sim.epoch_ms,
            shm.epoch_ms,
            shm.comm_ms,
            shm.wait_ms,
            model.total_ms(),
            model.compute_ms,
            model.comm_ms,
            total_err,
            compute_err,
        );

        for (label, v) in [
            ("measured epoch", shm.epoch_ms),
            ("measured compute", shm.compute_ms),
            ("model epoch", model.total_ms()),
            ("model compute", model.compute_ms),
            ("total err", total_err),
            ("compute err", compute_err),
            ("comm err", comm_err),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "p={p}: {label} must be finite and non-negative, got {v}"
            );
        }
        if capable && p > 1 {
            // Rank threads genuinely overlap here, so traced collective
            // time must register on both transports.
            assert!(
                sim.comm_ms > 0.0 && shm.comm_ms > 0.0,
                "p={p}: traced comm attribution must be nonzero on capable hosts \
                 (sim {:.3} ms, shm {:.3} ms)",
                sim.comm_ms,
                shm.comm_ms
            );
            assert!(
                model.comm_ms > 0.0,
                "p={p}: the §7 model must charge redistribution comm"
            );
        }

        let pre = format!("p{p}");
        rep.metric_f64(&format!("{pre}_sim_epoch_ms"), sim.epoch_ms, 3)
            .metric_f64(&format!("{pre}_shm_epoch_ms"), shm.epoch_ms, 3)
            .metric_f64(&format!("{pre}_shm_compute_ms"), shm.compute_ms, 3)
            .metric_f64(&format!("{pre}_shm_comm_ms"), shm.comm_ms, 3)
            .metric_f64(&format!("{pre}_shm_comm_wait_ms"), shm.wait_ms, 3)
            .metric_u64(&format!("{pre}_comm_bytes"), shm.comm_bytes)
            .metric_f64(&format!("{pre}_model_epoch_ms"), model.total_ms(), 3)
            .metric_f64(&format!("{pre}_model_compute_ms"), model.compute_ms, 3)
            .metric_f64(&format!("{pre}_model_comm_ms"), model.comm_ms, 3)
            .metric_f64(
                &format!("{pre}_model_transfer_ms"),
                model.all_transfer_ms(),
                3,
            )
            .metric_f64(&format!("{pre}_total_rel_err"), total_err, 2)
            .metric_f64(&format!("{pre}_compute_rel_err"), compute_err, 2)
            .metric_f64(&format!("{pre}_comm_rel_err"), comm_err, 2);
    }
    rep.write();

    println!(
        "PASS: both transports bit-identical at p in {{1,2,4}}; \
         model-vs-real per-phase error recorded{}",
        if capable {
            ", comm attribution asserted"
        } else {
            " (host < 4 cores: perf asserts skipped)"
        }
    );
}
