//! Out-of-core training benchmark: epoch time for the checkpointed
//! trainer with the snapshot blocks and carries spilled to the
//! `dgnn-store` tiered store, against the all-in-memory baseline.
//!
//! The synthetic graph is sized so its spilled snapshot working set
//! exceeds the store budget (the budget is set to *half* the working
//! set), which is the regime the paper's Fig. 4/5 OOM blanks describe:
//! the memory tier cannot hold the timeline, so every epoch faults
//! blocks back in from the file tier while the prefetch thread stages
//! the next checkpoint block. The run must stay within
//! [`REQUIRED_RATIO`]× of the in-memory epoch time and produce
//! bit-identical parameters (also pinned, budget-free, by
//! `tests/out_of_core_equivalence.rs`). Results land in
//! `BENCH_store.json`.

use std::time::Instant;

use dgnn_autograd::ParamStore;
use dgnn_core::prelude::*;
use dgnn_core::train_single_out_of_core;
use dgnn_store::{StoreConfig, StoreStats};
use dgnn_tensor::digest::digest_f32;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ms;
use crate::report::BenchReport;

/// Maximum allowed epoch-time ratio of the out-of-core run (budget =
/// half the working set) over the in-memory run.
pub const REQUIRED_RATIO: f64 = 1.5;

struct ModeResult {
    epoch_ms: f64,
    loss_bits: Vec<u64>,
    params_digest: u64,
    store: Option<StoreStats>,
}

fn run_mode(task: &Task, cfg: ModelConfig, epochs: usize, budget: Option<u64>) -> ModeResult {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let warm = TrainOptions {
        epochs: 1,
        lr: 0.05,
        nb: 4,
        seed: 7,
        threads: None,
    };
    let opts = TrainOptions { epochs, ..warm };
    match budget {
        None => {
            // Untimed warm-up epoch (page faults, pool spin-up, arena fill).
            let _ = train_single(&model, &head, &mut store, task, &warm);
            let start = Instant::now();
            let stats = train_single(&model, &head, &mut store, task, &opts);
            let elapsed = start.elapsed().as_secs_f64();
            ModeResult {
                epoch_ms: elapsed * 1e3 / epochs as f64,
                loss_bits: stats.iter().map(|s| s.loss.to_bits()).collect(),
                params_digest: digest_f32(&store.values_flat()),
                store: None,
            }
        }
        Some(budget) => {
            let scfg = StoreConfig::with_budget(budget);
            let (_, _) = train_single_out_of_core(&model, &head, &mut store, task, &warm, &scfg)
                .expect("warm-up must succeed");
            let start = Instant::now();
            let (stats, report) =
                train_single_out_of_core(&model, &head, &mut store, task, &opts, &scfg)
                    .expect("out-of-core run must succeed");
            let elapsed = start.elapsed().as_secs_f64();
            ModeResult {
                epoch_ms: elapsed * 1e3 / epochs as f64,
                loss_bits: stats.iter().map(|s| s.loss.to_bits()).collect(),
                params_digest: digest_f32(&store.values_flat()),
                store: Some(report),
            }
        }
    }
}

/// Bytes of the spilled snapshot working set (Laplacians + layer-0
/// inputs) — what the memory tier would need to hold the whole timeline.
/// Serialized size of the task's Laplacians plus layer-0 inputs — what
/// the tiered store must hold (also used by the telemetry smoke to pick
/// a half-working-set budget).
pub(crate) fn working_set_bytes(task: &Task) -> u64 {
    let laps: u64 = task
        .laps
        .iter()
        .map(|l| dgnn_store::encode_csr(l).len() as u64)
        .sum();
    let inputs: u64 = task
        .preagg
        .as_ref()
        .unwrap_or(&task.features)
        .iter()
        .map(|d| dgnn_store::encode_dense(d).len() as u64)
        .sum();
    laps + inputs
}

/// Runs the out-of-core store benchmark. `fast` shrinks the workload for
/// the CI smoke step.
pub fn run(fast: bool) {
    let (n, t, m, epochs, reps) = if fast {
        (8192, 8, 48000, 3, 2)
    } else {
        (8192, 8, 48000, 4, 3)
    };
    let cfg = ModelConfig {
        kind: ModelKind::CdGcn,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    };
    println!("== Out-of-core tiered store: n={n}, T={t}, m={m}, nb=4, CD-GCN ==");
    let g = dgnn_graph::gen::churn_skewed(n, t + 1, m, 0.3, 0.9, 11);
    let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
    let working_set = working_set_bytes(&task);
    let budget = working_set / 2;
    println!(
        "snapshot working set {:.1} MiB, store budget {:.1} MiB (half)",
        working_set as f64 / (1 << 20) as f64,
        budget as f64 / (1 << 20) as f64,
    );

    // Interleave the modes and keep each mode's best epoch time, so a
    // noisy neighbour hitting one rep does not skew the ratio.
    let mut mem: Option<ModeResult> = None;
    let mut ooc: Option<ModeResult> = None;
    for _ in 0..reps {
        let a = run_mode(&task, cfg, epochs, None);
        let b = run_mode(&task, cfg, epochs, Some(budget));
        if mem.as_ref().is_none_or(|prev| a.epoch_ms < prev.epoch_ms) {
            mem = Some(a);
        }
        if ooc.as_ref().is_none_or(|prev| b.epoch_ms < prev.epoch_ms) {
            ooc = Some(b);
        }
    }
    let mem = mem.expect("at least one rep");
    let ooc = ooc.expect("at least one rep");
    let report = ooc.store.expect("out-of-core mode reports store stats");

    assert_eq!(
        mem.loss_bits, ooc.loss_bits,
        "out-of-core training changed the loss stream"
    );
    assert_eq!(
        mem.params_digest, ooc.params_digest,
        "out-of-core training changed the parameters"
    );
    assert!(
        report.miss_bytes > 0,
        "half the working set must fault the file tier"
    );
    assert!(
        report.peak_resident_bytes <= budget,
        "memory tier exceeded its budget"
    );

    let ratio = ooc.epoch_ms / mem.epoch_ms;
    println!("in-memory   : {} /epoch", ms(mem.epoch_ms));
    println!(
        "out-of-core : {} /epoch, {:.1} MiB faulted/epoch, {} evictions, {} prefetch hits, {} demand misses",
        ms(ooc.epoch_ms),
        report.miss_bytes as f64 / (1 << 20) as f64 / epochs as f64,
        report.evictions,
        report.prefetch_hits,
        report.demand_misses,
    );
    println!("epoch-time ratio: {ratio:.2}x (required <= {REQUIRED_RATIO}x)");

    write_json(
        n,
        t,
        m,
        fast,
        working_set,
        budget,
        &mem,
        &ooc,
        &report,
        ratio,
    );

    assert!(
        ratio <= REQUIRED_RATIO,
        "out-of-core training at half budget should stay within {REQUIRED_RATIO}x of \
         in-memory, got {ratio:.2}x"
    );
    println!("PASS: out-of-core epochs <= {REQUIRED_RATIO}x in-memory, bit-identical parameters");
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    n: usize,
    t: usize,
    m: usize,
    fast: bool,
    working_set: u64,
    budget: u64,
    mem: &ModeResult,
    ooc: &ModeResult,
    report: &StoreStats,
    ratio: f64,
) {
    let mut r = BenchReport::new("store");
    r.config_bool("fast", fast)
        .config_u64("n", n as u64)
        .config_u64("t", t as u64)
        .config_u64("edges_per_snapshot", m as u64)
        .config_str("model", "cdgcn")
        .config_u64("nb", 4)
        .config_u64("working_set_bytes", working_set)
        .config_u64("budget_bytes", budget);
    r.metric_f64("in_memory_epoch_ms", mem.epoch_ms, 3)
        .metric_f64("out_of_core_epoch_ms", ooc.epoch_ms, 3)
        .metric_f64("epoch_ratio", ratio, 3)
        .metric_u64("miss_bytes", report.miss_bytes)
        .metric_u64("prefetch_hits", report.prefetch_hits)
        .metric_u64("demand_misses", report.demand_misses)
        .metric_u64("evictions", report.evictions)
        .metric_u64("peak_resident_bytes", report.peak_resident_bytes)
        .metric_bool("bit_identical", true)
        .metric_f64("required_ratio", REQUIRED_RATIO, 2);
    r.write();
}
