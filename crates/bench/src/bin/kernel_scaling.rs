//! Harness binary for the kernel-scaling benchmark (serial vs 2/4/8 pool
//! threads); pass `--fast` for reduced problem sizes. Asserts ≥ 1.7x at 4
//! threads for `matmul`/`spmm` when the host has at least 4 cores, and
//! records the timings to `BENCH_parallel.json`.
//!
//! Pass `--check-baseline` to instead re-measure single-thread GFLOP/s
//! and compare against the committed `BENCH_parallel.json` without
//! rewriting it — the CI kernel-regression guard.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let check_baseline = std::env::args().any(|a| a == "--check-baseline");
    dgnn_bench::kernel_scaling::run(fast, check_baseline);
}
