//! Harness binary for the kernel-scaling benchmark (serial vs 2/4/8 pool
//! threads); pass `--fast` for reduced problem sizes. Asserts ≥ 1.7x at 4
//! threads for `matmul`/`spmm` when the host has at least 4 cores, and
//! records the timings to `BENCH_parallel.json`.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::kernel_scaling::run(fast);
}
