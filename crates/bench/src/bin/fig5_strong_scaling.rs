//! Harness binary for the `fig5` experiment; pass `--fast` for a
//! reduced sweep.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::fig5::run(fast);
}
