//! Harness binary for the out-of-core store benchmark; pass `--fast` for
//! the reduced CI smoke workload.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::store::run(fast);
}
