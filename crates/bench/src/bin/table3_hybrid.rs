//! Harness binary for the `table3` experiment; pass `--fast` for a
//! reduced sweep.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::table3::run(fast);
}
