//! Harness binary for the `table1` experiment; pass `--fast` for a
//! reduced sweep.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::table1::run(fast);
}
