//! Harness binary for the serving benchmark; pass `--fast` for the CI
//! smoke workload.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::serve::run(fast);
}
