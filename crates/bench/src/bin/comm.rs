//! Transport benchmark binary: measured multi-rank epochs on both
//! communicator transports vs the §7 model, written to `BENCH_comm.json`.

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::comm::run(fast);
}
