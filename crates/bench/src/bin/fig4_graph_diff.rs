//! Harness binary for the `fig4` experiment; pass `--fast` for a
//! reduced sweep.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::fig4::run(fast);
}
