//! Runs every experiment harness in sequence (pass `--fast` to shrink).
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::table1::run(fast);
    println!("\n{}\n", "=".repeat(78));
    dgnn_bench::fig4::run(fast);
    println!("\n{}\n", "=".repeat(78));
    dgnn_bench::fig5::run(fast);
    println!("\n{}\n", "=".repeat(78));
    dgnn_bench::fig6::run(fast);
    println!("\n{}\n", "=".repeat(78));
    dgnn_bench::fig7::run(fast);
    println!("\n{}\n", "=".repeat(78));
    dgnn_bench::table2::run(fast);
    println!("\n{}\n", "=".repeat(78));
    dgnn_bench::table3::run(fast);
    println!("\n{}\n", "=".repeat(78));
    dgnn_bench::ablations::run(fast);
}
