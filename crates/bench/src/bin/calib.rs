//! Machine-constant calibration utility: prints the strong-scaling
//! breakdown of TM-GCN on AML-Sim so `MachineSpec` can be tuned against the
//! paper's Table 2 anchors (3396 ms at P=4, 593 ms at P=64).
use dgnn_graph::datasets::AMLSIM;
use dgnn_graph::stats::Smoothing;
use dgnn_sim::perf::{tune_nb, ModelKind, PerfConfig};

fn main() {
    let spec = AMLSIM;
    let stats = spec.stats(Smoothing::MProduct(spec.calibrated_mproduct_window()));
    for p in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let cfg = PerfConfig::new(ModelKind::TmGcn, stats.clone(), p, 1);
        match tune_nb(&cfg) {
            Some((nb, r)) => println!(
                "P={p:>3} nb={nb:>2} total={:>9.1}ms transfer={:>9.1} compute={:>9.1} comm={:>9.1} mem={}GiB",
                r.total_ms(), r.transfer_ms, r.compute_ms, r.comm_ms, r.peak_mem_bytes >> 30
            ),
            None => println!("P={p:>3} OOM at all nb"),
        }
    }
}
