//! Harness binary for the streaming-ingestion benchmark; pass `--fast`
//! for a reduced workload.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::streaming::run(fast);
}
