//! Harness binary for the pre-aggregation reuse churn sweep; pass
//! `--fast` for the reduced CI smoke workload.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::reuse::run(fast);
}
