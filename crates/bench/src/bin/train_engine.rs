//! Harness binary for the execution-engine workspace benchmark; pass
//! `--fast` for the reduced CI smoke workload.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::train_engine::run(fast);
}
