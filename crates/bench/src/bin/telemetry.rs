//! Harness binary for the observability smoke + §7 perf-model validation;
//! pass `--fast` for the reduced CI smoke workload.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::telemetry::run(fast);
}
