//! Harness binary for the `ablations` experiment; pass `--fast` for a
//! reduced sweep.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dgnn_bench::ablations::run(fast);
}
