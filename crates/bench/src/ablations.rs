//! Experiment E8 — ablations of the design choices the paper calls out:
//!
//! * checkpoint block count `nb`: memory vs time (paper §3.1 tunes it),
//! * pinned vs pageable host memory (paper §3.2 uses pinned),
//! * first-layer `Ã·X` pre-computation (paper §5.5),
//! * graph-difference gains on raw vs smoothed inputs (paper §6.2).

use dgnn_graph::datasets::AMLSIM;
use dgnn_graph::Smoothing;
use dgnn_sim::perf::{estimate_epoch, ModelKind, PerfConfig};

use crate::{gib, ms, smoothing_for};

/// Runs the ablation harness.
pub fn run(_fast: bool) {
    let spec = AMLSIM;

    println!("== Ablation A: checkpoint blocks (TM-GCN / AML-Sim, P=8) ==");
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10}",
        "nb", "total", "transfer", "mem", "fits?"
    );
    let stats = spec.stats(smoothing_for(ModelKind::TmGcn, &spec));
    for nb in [0usize, 1, 2, 4, 8, 16, 32, 64] {
        let cfg = PerfConfig::new(ModelKind::TmGcn, stats.clone(), 8, nb);
        let r = estimate_epoch(&cfg);
        println!(
            "{:>4} {:>10} {:>10} {:>10} {:>10}",
            if nb == 0 {
                "base".to_string()
            } else {
                nb.to_string()
            },
            ms(r.total_ms()),
            ms(r.transfer_ms),
            gib(r.peak_mem_bytes),
            if r.oom { "OOM" } else { "yes" }
        );
    }
    println!("(baseline = no checkpointing: everything resident, single transfer pass)");

    println!("\n== Ablation B: pinned vs pageable host memory (TM-GCN, P=1, nb=8) ==");
    for pinned in [true, false] {
        let cfg = PerfConfig {
            pinned,
            ..PerfConfig::new(ModelKind::TmGcn, stats.clone(), 1, 8)
        };
        let r = estimate_epoch(&cfg);
        println!(
            "  pinned={pinned:<5} transfer={:>10} total={:>10}",
            ms(r.transfer_ms),
            ms(r.total_ms())
        );
    }

    println!("\n== Ablation C: first-layer pre-aggregation (paper §5.5) ==");
    for model in ModelKind::all() {
        let st = spec.stats(smoothing_for(model, &spec));
        let with = estimate_epoch(&PerfConfig {
            precompute_first_layer: true,
            ..PerfConfig::new(model, st.clone(), 8, 8)
        });
        let without = estimate_epoch(&PerfConfig {
            precompute_first_layer: false,
            ..PerfConfig::new(model, st, 8, 8)
        });
        println!(
            "  {:<6} with={:>10}  without={:>10}  saving={:>5.1}%",
            model.name(),
            ms(with.total_ms()),
            ms(without.total_ms()),
            (1.0 - with.total_ms() / without.total_ms()) * 100.0
        );
    }

    println!("\n== Ablation D: GD speedup vs smoothing (AML-Sim stand-in, P=1, nb=8) ==");
    println!(
        "{:>22} {:>12} {:>12} {:>8}",
        "input", "Base xfer", "GD xfer", "speedup"
    );
    let w = spec.calibrated_mproduct_window();
    let l = spec.calibrated_edge_life();
    for (label, smoothing) in [
        ("raw (CD-GCN)", Smoothing::None),
        ("edge-life (EvolveGCN)", Smoothing::EdgeLife(l)),
        ("M-product (TM-GCN)", Smoothing::MProduct(w)),
    ] {
        let st = spec.stats(smoothing);
        let base = estimate_epoch(&PerfConfig {
            gd: false,
            ..PerfConfig::new(ModelKind::TmGcn, st.clone(), 1, 8)
        });
        let gd = estimate_epoch(&PerfConfig {
            gd: true,
            ..PerfConfig::new(ModelKind::TmGcn, st, 1, 8)
        });
        println!(
            "{label:>22} {:>12} {:>12} {:>7.2}x",
            ms(base.transfer_ms),
            ms(gd.transfer_ms),
            base.transfer_ms / gd.transfer_ms
        );
    }
    println!("\n(smoothing magnifies snapshot overlap, which is where GD gains come from)");

    println!("\n== Ablation E: computation-communication overlap (paper §6.5 proposal) ==");
    println!(
        "{:>4} {:>12} {:>12} {:>8}",
        "P", "sequential", "overlapped", "saving"
    );
    let st = spec.stats(smoothing_for(ModelKind::TmGcn, &spec));
    for p in [8usize, 16, 32, 64, 128] {
        let seq = estimate_epoch(&PerfConfig::new(ModelKind::TmGcn, st.clone(), p, 1));
        let ovl = estimate_epoch(&PerfConfig {
            overlap: true,
            ..PerfConfig::new(ModelKind::TmGcn, st.clone(), p, 1)
        });
        println!(
            "{p:>4} {:>12} {:>12} {:>7.1}%",
            ms(seq.total_ms()),
            ms(ovl.total_ms()),
            (1.0 - ovl.total_ms() / seq.total_ms()) * 100.0
        );
    }
    println!("(the paper leaves overlap as future work; the model bounds its benefit)");
}
