//! Execution-engine workspace benchmark: epoch time and backing-buffer
//! allocations per epoch for the checkpointed trainer, with the per-rank
//! buffer workspace suppressed (baseline) and engaged (reuse).
//!
//! The engaged-size configuration uses wide vertex sets (megabyte tape
//! nodes), the bandwidth-bound regime where the arena pays off twice: no
//! allocator round-trips (large buffers otherwise churn mmap/page-zeroing)
//! and no pre-zeroing pass on overwrite-only kernels — the baseline
//! writes every elementwise output twice, the workspace path once. Both
//! modes produce bit-identical parameters (cross-checked here and pinned
//! by `tests/engine_equivalence.rs`); the workspace is purely an
//! allocation optimisation. Results land in `BENCH_engine.json`.

use std::hint::black_box;
use std::time::Instant;

use dgnn_autograd::ParamStore;
use dgnn_core::prelude::*;
use dgnn_tensor::{digest::digest_f32, workspace};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ms;
use crate::report::BenchReport;

/// Required steady-state epoch speedup of the workspace path.
pub const REQUIRED_SPEEDUP: f64 = 1.2;

/// Cost of one `trace::span` probe while tracing is off, in nanoseconds
/// — the price every instrumented engine phase pays in production. The
/// probe is a single relaxed atomic load; anything past a few hundred
/// nanoseconds means the off path regressed.
fn disabled_span_overhead_ns() -> f64 {
    use dgnn_telemetry::trace;
    let was = trace::enabled();
    trace::set_enabled(false);
    const PROBES: u32 = 1_000_000;
    let start = Instant::now();
    for _ in 0..PROBES {
        black_box(trace::span("bench_probe"));
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(PROBES);
    trace::set_enabled(was);
    ns
}

struct ModeResult {
    epoch_ms: f64,
    allocs_per_epoch: f64,
    reused_per_epoch: f64,
    params_digest: u64,
}

/// One timed training run: `epochs` epochs of `train_single`, preceded by
/// an untimed warm-up epoch (page faults, pool spin-up, arena fill).
fn run_mode(task: &Task, cfg: ModelConfig, epochs: usize, reuse: bool) -> ModeResult {
    let _off = (!reuse).then(workspace::disable);
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let warm = TrainOptions {
        epochs: 1,
        lr: 0.05,
        nb: 4,
        seed: 7,
        threads: None,
    };
    let _ = train_single(&model, &head, &mut store, task, &warm);

    workspace::reset_alloc_stats();
    let opts = TrainOptions { epochs, ..warm };
    let start = Instant::now();
    let stats = train_single(&model, &head, &mut store, task, &opts);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(stats.len(), epochs);
    let (fresh, reused) = workspace::alloc_stats();
    ModeResult {
        epoch_ms: elapsed * 1e3 / epochs as f64,
        allocs_per_epoch: fresh as f64 / epochs as f64,
        reused_per_epoch: reused as f64 / epochs as f64,
        params_digest: digest_f32(&store.values_flat()),
    }
}

/// Runs the engine workspace benchmark. `fast` shrinks the workload for
/// the CI smoke step.
pub fn run(fast: bool) {
    let (n, t, m, epochs, reps) = if fast {
        (8192, 8, 48000, 3, 2)
    } else {
        (8192, 8, 48000, 4, 3)
    };
    let cfg = ModelConfig {
        kind: ModelKind::CdGcn,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    };
    println!("== Engine workspace reuse: n={n}, T={t}, m={m}, nb=4, CD-GCN ==");
    let g = dgnn_graph::gen::churn_skewed(n, t + 1, m, 0.3, 0.9, 11);
    let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());

    // Interleave the modes and keep each mode's best epoch time, so a
    // noisy neighbour hitting one rep does not skew the ratio.
    let mut base: Option<ModeResult> = None;
    let mut ws: Option<ModeResult> = None;
    for _ in 0..reps {
        let b = run_mode(&task, cfg, epochs, false);
        let w = run_mode(&task, cfg, epochs, true);
        if base.as_ref().is_none_or(|prev| b.epoch_ms < prev.epoch_ms) {
            base = Some(b);
        }
        if ws.as_ref().is_none_or(|prev| w.epoch_ms < prev.epoch_ms) {
            ws = Some(w);
        }
    }
    let base = base.expect("at least one rep");
    let ws = ws.expect("at least one rep");

    assert_eq!(
        base.params_digest, ws.params_digest,
        "workspace reuse changed training results"
    );
    let speedup = base.epoch_ms / ws.epoch_ms;
    let alloc_ratio = base.allocs_per_epoch / ws.allocs_per_epoch.max(1.0);
    println!(
        "baseline : {} /epoch, {:.0} buffer allocs/epoch",
        ms(base.epoch_ms),
        base.allocs_per_epoch
    );
    println!(
        "workspace: {} /epoch, {:.0} fresh + {:.0} reused buffers/epoch",
        ms(ws.epoch_ms),
        ws.allocs_per_epoch,
        ws.reused_per_epoch
    );
    println!("epoch speedup: {speedup:.2}x, alloc reduction: {alloc_ratio:.0}x");

    let disabled_ns = disabled_span_overhead_ns();
    println!("disabled trace probe: {disabled_ns:.1} ns/span");

    write_json(n, t, m, fast, &base, &ws, speedup, alloc_ratio, disabled_ns);

    assert!(
        disabled_ns < 250.0,
        "a disabled trace span must stay near-free (one relaxed atomic load), \
         got {disabled_ns:.1} ns/span"
    );

    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "workspace reuse should speed epochs by >= {REQUIRED_SPEEDUP}x on the engaged-size \
         config, got {speedup:.2}x"
    );
    println!("PASS: workspace epochs >= {REQUIRED_SPEEDUP}x baseline, bit-identical parameters");
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    n: usize,
    t: usize,
    m: usize,
    fast: bool,
    base: &ModeResult,
    ws: &ModeResult,
    speedup: f64,
    alloc_ratio: f64,
    disabled_span_ns: f64,
) {
    let mut r = BenchReport::new("train_engine");
    r.config_bool("fast", fast)
        .config_u64("n", n as u64)
        .config_u64("t", t as u64)
        .config_u64("edges_per_snapshot", m as u64)
        .config_str("model", "cdgcn")
        .config_u64("nb", 4);
    r.metric_f64("baseline_epoch_ms", base.epoch_ms, 3)
        .metric_f64("workspace_epoch_ms", ws.epoch_ms, 3)
        .metric_f64("baseline_allocs_per_epoch", base.allocs_per_epoch, 0)
        .metric_f64("workspace_allocs_per_epoch", ws.allocs_per_epoch, 0)
        .metric_f64("workspace_reused_per_epoch", ws.reused_per_epoch, 0)
        .metric_f64("epoch_speedup", speedup, 2)
        .metric_f64("alloc_reduction", alloc_ratio, 0)
        .metric_f64("required_speedup", REQUIRED_SPEEDUP, 2)
        .metric_f64("disabled_span_ns_per_probe", disabled_span_ns, 1);
    r.write_to("BENCH_engine.json");
}
