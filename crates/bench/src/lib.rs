//! # dgnn-bench
//!
//! Experiment harnesses regenerating every table and figure of the paper's
//! evaluation (§6). Each module prints the same rows/series the paper
//! reports, side by side with the paper's published values where available;
//! EXPERIMENTS.md records the comparison.
//!
//! Binaries: `table1`, `fig4_graph_diff`, `fig5_strong_scaling`,
//! `fig6_convergence`, `fig7_weak_scaling`, `table2_partition`,
//! `table3_hybrid`, `ablations`, `streaming` (event-ingestion throughput
//! and incremental-vs-rebuild window advance), `kernel_scaling` (serial vs
//! threaded kernels, recorded to `BENCH_parallel.json`), `serve`
//! (incremental-vs-full inference recompute and query throughput,
//! recorded to `BENCH_serve.json`), `store` (out-of-core training at half
//! the snapshot working set, recorded to `BENCH_store.json`), `reuse`
//! (cross-snapshot pre-aggregation reuse churn sweep, recorded to
//! `BENCH_reuse.json`), `telemetry`
//! (traced epoch span coverage, metrics scrape, and §7 model-vs-measured,
//! recorded to `BENCH_telemetry.json` + `TRACE_telemetry.json`), plus
//! `calib` (machine-constant calibration) and `run_all`.
//!
//! Every `BENCH_*.json` artifact is written through [`report::BenchReport`]
//! so they share one schema: bench name, schema version, host thread
//! count, a `config` map, and a `metrics` map.

pub mod ablations;
pub mod comm;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod kernel_scaling;
pub mod report;
pub mod reuse;
pub mod serve;
pub mod store;
pub mod streaming;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod telemetry;
pub mod train_engine;

/// The GPU counts swept by the paper's strong-scaling plots.
pub const P_SWEEP: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Formats a millisecond value compactly.
pub fn ms(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.2}s", v / 1e3)
    } else {
        format!("{v:.0}ms")
    }
}

/// Formats a byte count in GiB.
pub fn gib(bytes: u64) -> String {
    format!("{:.1}GiB", bytes as f64 / (1u64 << 30) as f64)
}

/// The smoothing each model applies to a dataset, with windows calibrated
/// against Table 1.
pub fn smoothing_for(
    kind: dgnn_sim::ModelKind,
    spec: &dgnn_graph::DatasetSpec,
) -> dgnn_graph::Smoothing {
    use dgnn_graph::Smoothing;
    match kind {
        dgnn_sim::ModelKind::CdGcn => Smoothing::None,
        dgnn_sim::ModelKind::EvolveGcn => Smoothing::EdgeLife(spec.calibrated_edge_life()),
        dgnn_sim::ModelKind::TmGcn => Smoothing::MProduct(spec.calibrated_mproduct_window()),
    }
}
