//! Experiment E5 — paper Figure 7: weak scaling on random graphs.
//!
//! The paper's generator: `T = 256` timesteps, each snapshot an independent
//! uniform random graph with `m = N·f` edges (`f = 3`), `N = 2^14` at
//! `P = 1` doubling with P up to 1M vertices at `P = 128`. Edge-life and
//! M-product smoothing are applied for EvolveGCN and TM-GCN. Throughput is
//! aggregate edges over execution time, normalised to `P = 1`.
//!
//! Expected shape (paper §6.3): TM-GCN ≈ 125x and CD-GCN ≈ 79x at `P = 128`
//! (brief dip crossing the node boundary at P = 16), EvolveGCN superlinear
//! (≈ 260x) because its per-rank kernel count shrinks as snapshots grow.

use dgnn_graph::stats::{Smoothing, TemporalStats};
use dgnn_sim::perf::{estimate_epoch, ModelKind, PerfConfig};

use crate::P_SWEEP;

/// Smoothing window used for the weak-scaling workload (the paper's
/// reported post-M-product sizes imply a small window on iid snapshots).
const WEAK_WINDOW: usize = 2;

fn stats_for(model: ModelKind, n: u64, t: usize, f: f64) -> TemporalStats {
    let m = n as f64 * f;
    // Independent snapshots are the churn model at rho = 1.
    let smoothing = match model {
        ModelKind::CdGcn => Smoothing::None,
        ModelKind::EvolveGcn => Smoothing::EdgeLife(WEAK_WINDOW),
        ModelKind::TmGcn => Smoothing::MProduct(WEAK_WINDOW),
    };
    TemporalStats::churn_closed_form(n, t, m, 1.0, smoothing)
}

/// Runs the Figure 7 harness. `fast` restricts the sweep.
pub fn run(fast: bool) {
    println!("== Figure 7: weak scaling (T=256, f=3, N = 2^14 * P) ==");
    let sweep: &[usize] = if fast { &[1, 8, 16, 128] } else { &P_SWEEP };
    let t = 256usize;
    let f = 3.0;
    for model in ModelKind::all() {
        println!("\n-- {} --", model.name());
        println!(
            "{:>4} {:>9} {:>12} {:>10} {:>14} {:>9}",
            "P", "N", "edges", "time", "edges/s", "speedup"
        );
        let mut base_throughput: Option<f64> = None;
        for &p in sweep {
            let n = (1u64 << 14) * p as u64;
            let stats = stats_for(model, n, t, f);
            let edges = stats.total_nnz();
            let cfg = PerfConfig::new(model, stats, p, 1);
            let report = estimate_epoch(&cfg);
            let throughput = edges as f64 / (report.total_ms() / 1e3);
            let base = *base_throughput.get_or_insert(throughput);
            println!(
                "{p:>4} {:>9} {:>12} {:>10} {:>14.3e} {:>8.1}x",
                n,
                edges,
                crate::ms(report.total_ms()),
                throughput,
                throughput / base
            );
        }
    }
    println!("\npaper reference at P=128: tmgcn 125x, cdgcn 79x, egcn 260x (superlinear).");
}
