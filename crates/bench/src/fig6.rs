//! Experiment E4 — paper Figure 6: loss and test-accuracy convergence under
//! snapshot partitioning vs hypergraph vertex partitioning.
//!
//! This is a *functional* experiment: both distributed trainers run real
//! training on an AML-Sim-like stand-in with identical seeds. The paper's
//! claim (§6.4): both schemes faithfully simulate the sequential algorithm,
//! so the curves are identical up to floating-point accumulation error.

use dgnn_core::prelude::*;

fn cfg(kind: ModelKind) -> ModelConfig {
    ModelConfig {
        kind,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    }
}

/// Runs the Figure 6 harness. `fast` reduces epochs and problem size.
pub fn run(fast: bool) {
    println!("== Figure 6: convergence under snapshot vs hypergraph partitioning ==");
    let (n, t, m, epochs) = if fast {
        (60, 7, 240, 3)
    } else {
        (120, 13, 600, 10)
    };
    let g = dgnn_graph::gen::churn_skewed(n, t, m, 0.2, 0.9, 41);
    let raw = g.time_slice(0, t - 1);
    let next = g.snapshot(t - 1).clone();
    let task_opts = TaskOptions {
        precompute_first_layer: false,
        ..Default::default()
    };
    let train_opts = TrainOptions {
        epochs,
        lr: 0.05,
        nb: 2,
        seed: 11,
        ..TrainOptions::default()
    };

    for kind in ModelKind::all() {
        println!(
            "\n-- {} (AML-Sim stand-in, N={n}, T={}) --",
            cfg(kind).kind.name(),
            t - 1
        );
        let snap = train_distributed(&raw, &next, cfg(kind), &task_opts, &train_opts, 2);
        let hyper = train_vertex_partitioned(&raw, &next, cfg(kind), &task_opts, &train_opts, 2);
        println!(
            "{:>5} {:>14} {:>14} {:>10} {:>12} {:>12}",
            "epoch", "loss(snap)", "loss(hyper)", "|Δloss|", "acc(snap)", "acc(hyper)"
        );
        let mut max_div = 0.0f64;
        for (e, (a, b)) in snap.iter().zip(&hyper).enumerate() {
            let d = (a.loss - b.loss).abs();
            max_div = max_div.max(d);
            println!(
                "{e:>5} {:>14.6} {:>14.6} {:>10.2e} {:>11.1}% {:>11.1}%",
                a.loss,
                b.loss,
                d,
                a.test_acc * 100.0,
                b.test_acc * 100.0
            );
        }
        println!("max |loss divergence| = {max_div:.2e}  (paper: curves identical)");
    }
}
