//! Streaming-ingestion benchmark: event-application throughput of
//! `StreamingGraph`, and incremental window advance (`DeltaBatcher` +
//! `reconstruct`) against a from-scratch CSR rebuild on a gradual
//! (≤10% churn per window) workload.
//!
//! The rebuild baseline is deliberately given a head start: its edge
//! triplets are pre-collected, so only the sort + CSR assembly is timed,
//! while the incremental path pays for event application, edit-list
//! emission, *and* reconstruction. The incremental path should still win
//! by well over 2x — it never sorts the full edge set.

use std::hint::black_box;
use std::time::Instant;

use dgnn_graph::gen::churn;
use dgnn_stream::{DeltaBatcher, EventLog, StreamingGraph};
use dgnn_tensor::Csr;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::ms;
use crate::report::BenchReport;

/// Runs the streaming benchmarks. `fast` shrinks the workload.
pub fn run(fast: bool) {
    let (n, m, t) = if fast {
        (2_000, 40_000, 8)
    } else {
        (10_000, 200_000, 12)
    };
    let rho = 0.08; // ≤10% of edges replaced per window
    println!("== Streaming ingestion: n={n}, m={m}, T={t}, churn={rho} ==");
    let g = churn(n, t, m, rho, 42);
    let log = EventLog::replay(&g);
    println!(
        "delta log: {} events for {} stored edges ({:.1}% of occurrence volume)",
        log.len(),
        g.total_nnz(),
        100.0 * log.len() as f64 / g.total_nnz() as f64
    );

    // -- Event-application throughput --------------------------------
    let start = Instant::now();
    let mut sg = StreamingGraph::new(n);
    sg.apply_all(log.events());
    let elapsed = start.elapsed();
    black_box(sg.nnz());
    let eps = log.len() as f64 / elapsed.as_secs_f64();
    println!(
        "ingestion: {} events in {} -> {:.2}M events/sec",
        log.len(),
        ms(elapsed.as_secs_f64() * 1e3),
        eps / 1e6
    );

    // -- Window advance: incremental vs rebuild ----------------------
    // Steady state: both paths start from a resident snapshot 0 (the
    // initial bulk load is the ingestion number above). The rebuild
    // baseline constructs each target snapshot from an *unsorted* edge
    // list — the order a production edge set (hash map) hands back —
    // pre-collected and shuffled outside the timed region.
    let events = log.events();
    let mut step_ranges = Vec::with_capacity(t);
    let mut lo = 0usize;
    for step in 0..t as u64 {
        let hi = lo + events[lo..].iter().take_while(|e| e.time == step).count();
        step_ranges.push(lo..hi);
        lo = hi;
    }
    let mut rng = StdRng::seed_from_u64(7);
    let coo_per_step: Vec<Vec<(u32, u32, f32)>> = (1..t)
        .map(|ti| {
            let mut coo = g.snapshot(ti).adj().to_coo();
            coo.shuffle(&mut rng);
            coo
        })
        .collect();

    let mut incremental_s = 0.0f64;
    let mut batcher = DeltaBatcher::from_snapshot(g.snapshot(0));
    let mut resident = g.snapshot(0).adj().clone();
    for r in &step_ranges[1..] {
        let start = Instant::now();
        batcher.apply_all(&events[r.clone()]);
        let (next, diff) = batcher.advance();
        incremental_s += start.elapsed().as_secs_f64();
        black_box(diff.edits());
        resident = next;
    }

    let mut rebuild_s = 0.0f64;
    for coo in &coo_per_step {
        let start = Instant::now();
        let snap = Csr::from_coo(n, n, coo);
        rebuild_s += start.elapsed().as_secs_f64();
        black_box(snap.nnz());
    }

    // Correctness guard: the incremental chain must land on the final
    // snapshot exactly.
    assert_eq!(
        &resident,
        g.snapshot(t - 1).adj(),
        "incremental chain diverged from batch construction"
    );

    let advances = t - 1;
    let speedup = rebuild_s / incremental_s;
    println!(
        "window advance over {advances} windows: incremental {} | rebuild {} | speedup {speedup:.2}x",
        ms(incremental_s * 1e3 / advances as f64),
        ms(rebuild_s * 1e3 / advances as f64),
    );
    let mut rep = BenchReport::new("streaming");
    rep.config_bool("fast", fast)
        .config_u64("n", n as u64)
        .config_u64("edges_per_snapshot", m as u64)
        .config_u64("t", t as u64)
        .config_f64("churn", rho, 2);
    rep.metric_u64("events", log.len() as u64)
        .metric_f64("events_per_sec", eps, 0)
        .metric_f64(
            "incremental_ms_per_window",
            incremental_s * 1e3 / advances as f64,
            3,
        )
        .metric_f64(
            "rebuild_ms_per_window",
            rebuild_s * 1e3 / advances as f64,
            3,
        )
        .metric_f64("speedup", speedup, 2)
        .metric_f64("required_speedup", 2.0, 2);
    rep.write();

    assert!(
        speedup >= 2.0,
        "incremental window advance should be >= 2x a full rebuild, got {speedup:.2}x"
    );
    println!("PASS: incremental window advance >= 2x full rebuild");
}
