//! Experiment E6 — paper Table 2: communication volume and per-epoch time
//! of snapshot vs hypergraph partitioning on AML-Sim at P ∈ {4, 16, 64}.
//!
//! Volumes are exact: the snapshot-side formula is closed form; the
//! hypergraph side partitions a degree-preserving scaled stand-in (λ_t(v)
//! depends on the per-vertex degree distribution and P, not on N, so the
//! per-vertex volume transfers across scales) and scales the unit count
//! back up. Times come from the analytic engine.
//!
//! Expected shape (paper §6.4): snapshot volume is fixed ~O(T·N) and its
//! time keeps falling with P; hypergraph volume *grows* with P (overtaking
//! snapshot volume on the smoothed TM-GCN inputs by P = 64) and its time
//! degrades due to the irregular exchange.

use dgnn_graph::datasets::AMLSIM;
use dgnn_graph::gen::{amlsim_like, AmlSimConfig};
use dgnn_partition::{partition, vertex_spmm_units, Hypergraph, PartitionerConfig};
use dgnn_sim::perf::{estimate_epoch, tune_nb, ModelKind, PerfConfig, Scheme};

use crate::{ms, smoothing_for};

/// One paper Table 2 row: (model, P, snap vol B, hyper vol B, snap ms,
/// hyper ms). `None` = DNR (did not run).
type PaperRow = (&'static str, usize, f64, Option<f64>, f64, Option<f64>);

/// Paper Table 2 values for reference printing.
const PAPER: [PaperRow; 9] = [
    ("tmgcn", 4, 5.2, Some(3.2), 3396.0, Some(6668.0)),
    ("tmgcn", 16, 6.5, Some(6.8), 1384.0, Some(5254.0)),
    ("tmgcn", 64, 6.8, Some(9.5), 593.0, Some(9164.0)),
    ("cdgcn", 4, 13.8, Some(0.4), 3867.0, Some(6252.0)),
    ("cdgcn", 16, 17.3, Some(0.9), 2545.0, Some(4653.0)),
    ("cdgcn", 64, 18.1, Some(1.2), 1135.0, Some(8856.0)),
    ("egcn", 4, 0.0, None, 4185.0, None),
    ("egcn", 16, 0.0, Some(5.0), 944.0, Some(8431.0)),
    ("egcn", 64, 0.0, Some(6.9), 308.0, Some(12276.0)),
];

/// Mean redistribution width of a model (floats per feature vector).
fn mean_width(model: ModelKind) -> f64 {
    match model {
        // CD-GCN redistributes the concatenated GCN outputs (8 then 12
        // floats) one way and hidden-width embeddings the other.
        ModelKind::CdGcn => (8.0 + 6.0 + 12.0 + 6.0) / 4.0,
        _ => 6.0,
    }
}

/// Runs the Table 2 harness. `fast` shrinks the stand-in further.
pub fn run(fast: bool) {
    println!("== Table 2: snapshot vs hypergraph partitioning (AML-Sim) ==");
    let spec = AMLSIM;
    // Degree- and community-preserving scaled stand-in for the hypergraph
    // side: AML-Sim transactions cluster inside banks, which is what lets
    // PaToH find low-λ partitions; a structureless churn graph would not.
    let scale: u64 = if fast { 2_000 } else { 500 };
    let n_small = (spec.n / scale) as usize;
    let m_small = (spec.edges_per_snapshot() / scale as f64).round() as usize;
    let aml_cfg = AmlSimConfig {
        n: n_small,
        t: spec.t,
        communities: 16,
        transactions_per_step: m_small,
        intra_community_prob: 0.9,
        churn: spec.churn_rho,
        rings: 8,
        ring_size: 5,
        zipf_s: 0.9,
    };
    println!("(hypergraph volumes measured on a 1/{scale} degree/community-preserving stand-in)");

    println!(
        "\n{:<7} {:>4} | {:>11} {:>11} | {:>11} {:>11} | {:>10} {:>10} | {:>10} {:>10}",
        "model",
        "P",
        "snapV(B)",
        "paper",
        "hyperV(B)",
        "paper",
        "snap t",
        "paper",
        "hyper t",
        "paper"
    );
    for model in [ModelKind::TmGcn, ModelKind::CdGcn, ModelKind::EvolveGcn] {
        let smoothing = smoothing_for(model, &spec);
        let stats = spec.stats(smoothing);
        let g_small = amlsim_like(&aml_cfg, 57);
        let smoothed_small = smoothing.apply(&g_small);
        let hg = Hypergraph::column_net_model(&smoothed_small);
        for p in [4usize, 16, 64] {
            // --- Volumes (billions of floats per epoch, forward+backward). ---
            let snap_vol = if model.uses_redistribution() {
                dgnn_partition::snapshot_epoch_units(spec.t, spec.n as usize, p, 2) as f64
                    * mean_width(model)
                    / 1e9
            } else {
                0.0
            };
            let part = partition(&hg, &PartitionerConfig::new(p));
            let small_units = vertex_spmm_units(&smoothed_small, &part, p);
            let hyper_units = small_units as f64 * scale as f64;
            let hyper_vol = 2.0 * 2.0 * hyper_units * mean_width(model) / 1e9;

            // --- Times from the analytic engine. ---
            let snap_cfg = PerfConfig::new(model, stats.clone(), p, 1);
            let snap_t = tune_nb(&snap_cfg).map(|(_, r)| r.total_ms());
            let hyper_cfg = PerfConfig {
                scheme: Scheme::Vertex {
                    spmm_units: hyper_units as u64,
                },
                gd: false,
                ..PerfConfig::new(model, stats.clone(), p, 1)
            };
            let hyper_t = tune_nb(&hyper_cfg).map(|(_, r)| r.total_ms());
            let _ = estimate_epoch;

            let paper_row = PAPER.iter().find(|r| r.0 == model.name() && r.1 == p);
            let (pv, phv, pt, pht) = match paper_row {
                Some(&(_, _, v, hv, t, ht)) => (
                    format!("{v:.1}"),
                    hv.map_or("DNR".into(), |x| format!("{x:.1}")),
                    ms(t),
                    ht.map_or("DNR".into(), ms),
                ),
                None => ("-".into(), "-".into(), "-".into(), "-".into()),
            };
            println!(
                "{:<7} {:>4} | {:>11.2} {:>11} | {:>11.2} {:>11} | {:>10} {:>10} | {:>10} {:>10}",
                model.name(),
                p,
                snap_vol,
                pv,
                hyper_vol,
                phv,
                snap_t.map_or("OOM".into(), ms),
                pt,
                hyper_t.map_or("OOM".into(), ms),
                pht,
            );
        }
    }
    println!(
        "\nshape checks: snapshot volume saturates at O(T·N); hypergraph volume grows with P;"
    );
    println!("snapshot time keeps falling while hypergraph time degrades at high P.");
}
