//! The one `BENCH_*.json` writer: every bench binary records its machine
//! check through this builder so the artifacts share a schema — bench
//! name, schema version, host thread count, a `config` map (what was
//! run), and a `metrics` map (what was measured). Keys keep insertion
//! order, values are rendered to JSON as they are added, and the final
//! document is checked with `dgnn_telemetry::jsonlint` before writing.

use dgnn_telemetry::jsonlint;

/// Schema version stamped into every report.
pub const SCHEMA_VERSION: u32 = 1;

/// Builder for one bench artifact. See the module docs for the layout.
pub struct BenchReport {
    name: String,
    config: Vec<(String, String)>,
    metrics: Vec<(String, String)>,
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        // JSON has no Inf/NaN; null keeps the document valid and the
        // absence visible.
        "null".to_string()
    }
}

impl BenchReport {
    /// Starts a report for bench `name` (the artifact defaults to
    /// `BENCH_{name}.json`).
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            config: Vec::new(),
            metrics: Vec::new(),
        }
    }

    fn push_config(&mut self, key: &str, value: String) -> &mut Self {
        self.config.push((key.to_string(), value));
        self
    }

    fn push_metric(&mut self, key: &str, value: String) -> &mut Self {
        self.metrics.push((key.to_string(), value));
        self
    }

    /// Adds a string config entry.
    pub fn config_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.push_config(key, json_string(v))
    }

    /// Adds a boolean config entry.
    pub fn config_bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.push_config(key, v.to_string())
    }

    /// Adds an integer config entry.
    pub fn config_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.push_config(key, v.to_string())
    }

    /// Adds a float config entry with `decimals` places.
    pub fn config_f64(&mut self, key: &str, v: f64, decimals: usize) -> &mut Self {
        self.push_config(key, json_f64(v, decimals))
    }

    /// Adds a string metric.
    pub fn metric_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.push_metric(key, json_string(v))
    }

    /// Adds a boolean metric.
    pub fn metric_bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.push_metric(key, v.to_string())
    }

    /// Adds an integer metric.
    pub fn metric_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.push_metric(key, v.to_string())
    }

    /// Adds a float metric with `decimals` places.
    pub fn metric_f64(&mut self, key: &str, v: f64, decimals: usize) -> &mut Self {
        self.push_metric(key, json_f64(v, decimals))
    }

    /// Adds a metric whose value is pre-rendered JSON (an array or nested
    /// object the scalar helpers cannot express). The fragment is
    /// validated before it is accepted.
    pub fn metric_raw(&mut self, key: &str, raw_json: &str) -> &mut Self {
        jsonlint::validate(raw_json)
            .unwrap_or_else(|e| panic!("metric {key:?} raw value is not valid JSON: {e}"));
        self.push_metric(key, raw_json.to_string())
    }

    /// Renders the full document.
    pub fn render(&self) -> String {
        let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_string(&self.name)));
        out.push_str(&format!("  \"schema\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"host_threads\": {host_threads},\n"));
        for (section, entries) in [("config", &self.config), ("metrics", &self.metrics)] {
            out.push_str(&format!("  \"{section}\": {{\n"));
            for (i, (k, v)) in entries.iter().enumerate() {
                let comma = if i + 1 == entries.len() { "" } else { "," };
                out.push_str(&format!("    {}: {v}{comma}\n", json_string(k)));
            }
            let tail = if section == "config" { ",\n" } else { "\n" };
            out.push_str(&format!("  }}{tail}"));
        }
        out.push_str("}\n");
        jsonlint::validate(&out)
            .unwrap_or_else(|e| panic!("BENCH_{} report rendered invalid JSON: {e}", self.name));
        out
    }

    /// Writes the report to `BENCH_{name}.json` in the working directory.
    pub fn write(&self) {
        self.write_to(&format!("BENCH_{}.json", self.name));
    }

    /// Writes the report to an explicit path (for benches whose artifact
    /// name predates the shared scheme, e.g. `BENCH_parallel.json`).
    pub fn write_to(&self, path: &str) {
        match std::fs::write(path, self.render()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => println!("could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_json_with_shared_schema() {
        let mut r = BenchReport::new("demo");
        r.config_u64("n", 128)
            .config_str("model", "cdgcn")
            .config_bool("fast", true)
            .config_f64("theta", 0.1, 3);
        r.metric_f64("epoch_ms", 12.345, 3)
            .metric_u64("bytes", 1 << 20)
            .metric_bool("bit_identical", true)
            .metric_raw("series", "[1, 2, 3]");
        let doc = r.render();
        dgnn_telemetry::jsonlint::validate(&doc).unwrap();
        assert!(doc.contains("\"bench\": \"demo\""));
        assert!(doc.contains("\"schema\": 1"));
        assert!(doc.contains("\"host_threads\":"));
        assert!(doc.contains("\"theta\": 0.100"));
        assert!(doc.contains("\"series\": [1, 2, 3]"));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let mut r = BenchReport::new("edge");
        r.metric_f64("speedup", f64::INFINITY, 2);
        let doc = r.render();
        dgnn_telemetry::jsonlint::validate(&doc).unwrap();
        assert!(doc.contains("\"speedup\": null"));
    }

    #[test]
    #[should_panic(expected = "not valid JSON")]
    fn raw_metric_rejects_garbage() {
        BenchReport::new("bad").metric_raw("x", "[1,");
    }

    #[test]
    fn empty_sections_render_as_empty_objects() {
        let doc = BenchReport::new("empty").render();
        dgnn_telemetry::jsonlint::validate(&doc).unwrap();
        assert!(doc.contains("\"config\": {\n  },"));
    }
}
