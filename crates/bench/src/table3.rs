//! Experiment E7 — paper §6.5: training with hybrid partitioning on the
//! large AML-Sim variants, where individual snapshots are split between two
//! GPUs.
//!
//! The paper reports test accuracies of 63.8% (AMLSim-Large-1, 2.2B edges,
//! 44 GB) and 65.8% (AMLSim-Large-2, 3.2B edges, 64 GB) and emphasises that
//! the hybrid scheme truthfully simulates the sequential execution. Here a
//! scaled stand-in is trained functionally with the hybrid trainer (P = 2,
//! one group) and the sequential trainer side by side; the full-scale
//! memory argument is reproduced analytically.

use dgnn_autograd::ParamStore;
use dgnn_core::prelude::*;
use dgnn_graph::datasets::{AMLSIM_LARGE_1, AMLSIM_LARGE_2};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg() -> ModelConfig {
    ModelConfig {
        kind: ModelKind::TmGcn,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    }
}

/// Runs the §6.5 harness. `fast` shrinks the stand-in and epoch count.
pub fn run(fast: bool) {
    println!("== §6.5: hybrid partitioning on large snapshots ==");
    println!(
        "{:<16} {:>5} {:>8} {:>10} | {:>10}",
        "dataset", "T", "nnz", "size", "paper acc"
    );
    for (spec, acc) in [(AMLSIM_LARGE_1, 63.8), (AMLSIM_LARGE_2, 65.8)] {
        println!(
            "{:<16} {:>5} {:>7.1}B {:>9.0}GB | {:>9.1}%",
            spec.name,
            spec.t,
            spec.nnz as f64 / 1e9,
            spec.nnz as f64 * 20.0 / 1e9,
            acc
        );
    }
    println!("\nfull-scale memory: 20 B/edge COO -> 44 GB and 64 GB total, larger than one");
    println!("32 GiB GPU even under checkpointing; splitting each snapshot between 2 GPUs halves");
    println!("the per-rank share, which is the hybrid scheme's motivation.\n");

    let (n, t, m, epochs) = if fast {
        (60, 9, 300, 6)
    } else {
        (120, 13, 700, 25)
    };
    let g = dgnn_graph::gen::churn_skewed(n, t, m, 0.2, 0.9, 77);
    let raw = g.time_slice(0, t - 1);
    let next = g.snapshot(t - 1).clone();
    let task_opts = TaskOptions {
        precompute_first_layer: false,
        ..Default::default()
    };
    let train_opts = TrainOptions {
        epochs,
        lr: 0.1,
        nb: 2,
        seed: 19,
        ..TrainOptions::default()
    };

    // Hybrid (2 members splitting every snapshot).
    let hybrid = train_hybrid(&raw, &next, cfg(), &task_opts, &train_opts, 2);

    // Sequential reference.
    let task = dgnn_core::prepare_task(&raw, &next, &cfg(), &task_opts);
    let mut rng = StdRng::seed_from_u64(train_opts.seed);
    let mut store = ParamStore::new();
    let model = Model::new(cfg(), &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg().embedding_dim(), 2, &mut rng);
    let seq = train_single(&model, &head, &mut store, &task, &train_opts);

    println!("functional stand-in (N={n}, T={}):", t - 1);
    println!(
        "{:>5} {:>14} {:>14} {:>12} {:>12}",
        "epoch", "loss(hybrid)", "loss(seq)", "acc(hybrid)", "acc(seq)"
    );
    for (e, (h, s)) in hybrid.iter().zip(&seq).enumerate() {
        println!(
            "{e:>5} {:>14.6} {:>14.6} {:>11.1}% {:>11.1}%",
            h.loss,
            s.loss,
            h.test_acc * 100.0,
            s.test_acc * 100.0
        );
    }
    let best = hybrid.iter().map(|s| s.test_acc).fold(0.0, f64::max);
    println!(
        "\nbest hybrid test accuracy: {:.1}%  (paper full-scale: 63.8% / 65.8%; the claim",
        best * 100.0
    );
    println!("reproduced here is the *faithful simulation* — hybrid == sequential curves).");
}
