//! Churn-rate sweep for the cross-snapshot pre-aggregation reuse cache
//! (`dgnn_graph::preagg`, the ReInc-style incremental `Ã_t·X_t` build).
//!
//! For each churn rate the sweep builds the same unsmoothed (CD-GCN
//! layout) pre-aggregation timeline three ways — from scratch, carried
//! forward with the diff-derived touched-vertex journal, and carried
//! forward with the exact bitwise dirty-row scan — asserts all three are
//! bit-identical, and times them. It also records one training epoch per
//! rate for context (the build runs once per prepared task; the epochs
//! are what it amortizes against). Results land in `BENCH_reuse.json`.
//!
//! At low churn the journal path must recompute at most
//! [`REQUIRED_LOW_CHURN_MAX_RECOMPUTED`] of the rows (deterministic,
//! asserted everywhere) and beat the from-scratch build by
//! [`REQUIRED_LOW_CHURN_SPEEDUP`]x (wall clock, asserted on capable
//! hosts with one in-process re-measure): almost every row is carried
//! over as a copy instead of re-gathered through the CSR. The scan fallback
//! pays an `O(nnz + n·F)` comparison pass, so with the 2-wide degree
//! features it roughly breaks even — it is recorded, not asserted; its
//! job is correctness on smoothed timelines, not speed.

use std::time::Instant;

use dgnn_autograd::ParamStore;
use dgnn_core::prelude::*;
use dgnn_graph::preagg::{incremental_preagg, journal_from_diff};
use dgnn_graph::Snapshot;
use dgnn_tensor::{Csr, Dense};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ms;
use crate::report::BenchReport;

/// Minimum journal-path speedup over the from-scratch build at churn
/// rates of at most [`LOW_CHURN_MAX_RATE`], asserted on capable hosts.
/// Wall-clock ratios flake under noisy neighbors, so a failing first
/// measurement is re-timed once in-process before the assert fires; the
/// deterministic [`REQUIRED_LOW_CHURN_MAX_RECOMPUTED`] bound below is
/// what guards the algorithmic property on every host.
pub const REQUIRED_LOW_CHURN_SPEEDUP: f64 = 2.0;

/// Maximum fraction of pre-aggregation rows the journal path may
/// recompute at churn rates of at most [`LOW_CHURN_MAX_RATE`]. Unlike
/// the timing ratio this is a pure function of the seeded timeline —
/// rows carried vs rows re-gathered — so it is asserted on *every*
/// host, including the 1-core sandbox where timing is skipped. The
/// sweep measures ~17% recomputed at 5% churn; 25% leaves headroom
/// while still implying the documented speedup.
pub const REQUIRED_LOW_CHURN_MAX_RECOMPUTED: f64 = 0.25;

/// Churn rates at or below this count as "low churn" for the assertion.
pub const LOW_CHURN_MAX_RATE: f64 = 0.05;

/// The swept per-snapshot edge-churn fractions (1% – 50%).
pub const RATES: [f64; 6] = [0.01, 0.02, 0.05, 0.10, 0.20, 0.50];

struct RateResult {
    rate: f64,
    scratch_ms: f64,
    journal_ms: f64,
    scan_ms: f64,
    epoch_ms: f64,
    recomputed_fraction: f64,
}

impl RateResult {
    fn journal_speedup(&self) -> f64 {
        self.scratch_ms / self.journal_ms
    }

    fn scan_speedup(&self) -> f64 {
        self.scratch_ms / self.scan_ms
    }
}

fn bits(blocks: &[Dense]) -> Vec<u32> {
    blocks
        .iter()
        .flat_map(|d| d.data().iter().map(|v| v.to_bits()))
        .collect()
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let v = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (best, out.expect("at least one rep"))
}

fn sweep_rate(n: usize, t: usize, m: usize, rate: f64, reps: usize, epochs: bool) -> RateResult {
    // Recycle block allocations across reps/timesteps, as the engine does.
    let _ws = dgnn_tensor::workspace::engage();
    let g = dgnn_graph::gen::churn(n, t + 1, m, rate, 23);
    let train = g.time_slice(0, t);
    // The CD-GCN (unsmoothed) layout: Laplacians and degree features
    // straight off the raw snapshots — the configuration whose journal
    // path `train_streaming` drives per window.
    let laps: Vec<Csr> = train.snapshots().iter().map(Snapshot::laplacian).collect();
    let xs: Vec<Dense> = dgnn_graph::degree_features(&train).into_frames();
    // churn snapshots are unweighted, so the structural diff endpoints
    // are a complete touched-vertex journal.
    let journal: Vec<Vec<u32>> = (1..t)
        .map(|ti| {
            journal_from_diff(&dgnn_graph::diff(
                train.snapshot(ti - 1).adj(),
                train.snapshot(ti).adj(),
            ))
        })
        .collect();

    // The three builds are timed single-threaded: the speedup under test
    // is the algorithmic work saved per timestep (rows carried vs rows
    // re-gathered), which thread count does not change — the outputs are
    // bit-identical at any width — but parallel scheduling noise would
    // blur the ratio from host to host.
    let serial = dgnn_tensor::pool::scoped_threads(Some(1));
    let (scratch_ms, scratch) = best_of(reps, || {
        laps.iter()
            .zip(&xs)
            .map(|(a, x)| a.spmm(x))
            .collect::<Vec<Dense>>()
    });
    let (journal_ms, (journaled, stats)) =
        best_of(reps, || incremental_preagg(&laps, &xs, Some(&journal)));
    let (scan_ms, (scanned, _)) = best_of(reps, || incremental_preagg(&laps, &xs, None));
    drop(serial);

    assert_eq!(
        bits(&scratch),
        bits(&journaled),
        "journal path changed bits"
    );
    assert_eq!(bits(&scratch), bits(&scanned), "scan path changed bits");

    let epoch_ms = if epochs {
        let cfg = ModelConfig {
            kind: ModelKind::CdGcn,
            input_f: 2,
            hidden: 6,
            mprod_window: 3,
            smoothing_window: 3,
        };
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let model = Model::new(cfg, &mut store, &mut rng);
        let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
        let opts = TrainOptions {
            epochs: 1,
            lr: 0.05,
            nb: 4,
            seed: 7,
            threads: None,
        };
        let start = Instant::now();
        let _ = train_single(&model, &head, &mut store, &task, &opts);
        start.elapsed().as_secs_f64() * 1e3
    } else {
        f64::NAN
    };

    RateResult {
        rate,
        scratch_ms,
        journal_ms,
        scan_ms,
        epoch_ms,
        recomputed_fraction: stats.recomputed_fraction(),
    }
}

/// Runs the pre-aggregation reuse sweep. `fast` shrinks the workload for
/// the CI smoke step.
pub fn run(fast: bool) {
    // The dirty fraction scales like `4·rate·(m/n)·(lap row nnz)` — the
    // churned edges times the one-hop expansion — so the sweep uses a
    // sparse timeline (m/n = 1/2, the regime of per-window interaction
    // graphs) where low churn leaves most rows untouched. Denser graphs
    // saturate `T ∪ N(T)` and the builder correctly degrades to scratch.
    // Timelines are long enough that the carried steady state dominates
    // the one unavoidable from-scratch build at t = 0.
    let (n, t, m, reps) = if fast {
        (16384, 16, 8192, 5)
    } else {
        (32768, 24, 16384, 7)
    };
    println!("== Pre-aggregation reuse: n={n}, T={t}, m={m}, churn sweep {RATES:?} ==");
    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let assert_speedup = host_threads >= 4;

    let results: Vec<RateResult> = RATES
        .iter()
        .map(|&rate| {
            let r = sweep_rate(n, t, m, rate, reps, true);
            println!(
                "churn {:>4.0}% : scratch {:>8} | journal {:>8} ({:>4.1}x, {:>4.1}% rows recomputed) \
                 | scan {:>8} ({:>4.1}x) | epoch {}",
                rate * 100.0,
                ms(r.scratch_ms),
                ms(r.journal_ms),
                r.journal_speedup(),
                r.recomputed_fraction * 100.0,
                ms(r.scan_ms),
                r.scan_speedup(),
                ms(r.epoch_ms),
            );
            r
        })
        .collect();

    write_json(n, t, m, fast, assert_speedup, &results);

    let low_churn: Vec<&RateResult> = results
        .iter()
        .filter(|r| r.rate <= LOW_CHURN_MAX_RATE)
        .collect();
    // The deterministic guard: rows recomputed vs rows carried is a pure
    // function of the seeded timeline, so it holds on any host at any
    // load — this is what actually pins the work saving the timing ratio
    // estimates.
    let worst_recomputed = low_churn
        .iter()
        .map(|r| r.recomputed_fraction)
        .fold(0.0, f64::max);
    assert!(
        worst_recomputed <= REQUIRED_LOW_CHURN_MAX_RECOMPUTED,
        "journal path at <= {:.0}% churn must recompute <= {:.0}% of preagg rows, got {:.1}%",
        LOW_CHURN_MAX_RATE * 100.0,
        REQUIRED_LOW_CHURN_MAX_RECOMPUTED * 100.0,
        worst_recomputed * 100.0
    );
    let mut worst = low_churn
        .iter()
        .map(|r| r.journal_speedup())
        .fold(f64::INFINITY, f64::min);
    if assert_speedup {
        if worst < REQUIRED_LOW_CHURN_SPEEDUP {
            // One in-process re-measure absorbs a noisy-neighbor burst on
            // shared runners before the assert fires: re-time the
            // low-churn builds (no epochs) and keep the best of both.
            println!(
                "low-churn speedup {worst:.2}x below {REQUIRED_LOW_CHURN_SPEEDUP}x on first \
                 measurement; re-timing once"
            );
            worst = RATES
                .iter()
                .filter(|&&rate| rate <= LOW_CHURN_MAX_RATE)
                .map(|&rate| sweep_rate(n, t, m, rate, reps, false).journal_speedup())
                .zip(low_churn.iter().map(|r| r.journal_speedup()))
                .map(|(again, first)| again.max(first))
                .fold(f64::INFINITY, f64::min);
        }
        assert!(
            worst >= REQUIRED_LOW_CHURN_SPEEDUP,
            "journal-path preagg build at <= {:.0}% churn must be >= {REQUIRED_LOW_CHURN_SPEEDUP}x \
             the from-scratch build, got {worst:.2}x",
            LOW_CHURN_MAX_RATE * 100.0
        );
        println!(
            "PASS: low-churn journal speedup {worst:.1}x >= {REQUIRED_LOW_CHURN_SPEEDUP}x, \
             rows recomputed {:.1}% <= {:.0}%, all paths bit-identical",
            worst_recomputed * 100.0,
            REQUIRED_LOW_CHURN_MAX_RECOMPUTED * 100.0
        );
    } else {
        println!(
            "SKIP: timing assertion needs >= 4 host threads (have {host_threads}); measured \
             {worst:.1}x at low churn; rows-recomputed bound and bitwise equality still verified"
        );
    }
}

fn write_json(n: usize, t: usize, m: usize, fast: bool, asserted: bool, results: &[RateResult]) {
    let arr = |f: &dyn Fn(&RateResult) -> f64, decimals: usize| -> String {
        let vals: Vec<String> = results
            .iter()
            .map(|r| format!("{:.*}", decimals, f(r)))
            .collect();
        format!("[{}]", vals.join(", "))
    };
    let mut r = BenchReport::new("reuse");
    r.config_bool("fast", fast)
        .config_u64("n", n as u64)
        .config_u64("t", t as u64)
        .config_u64("edges_per_snapshot", m as u64)
        .config_str("model", "cdgcn")
        .config_bool("speedup_asserted", asserted);
    r.metric_raw("churn_rates", &arr(&|r| r.rate, 2))
        .metric_raw("scratch_build_ms", &arr(&|r| r.scratch_ms, 3))
        .metric_raw("journal_build_ms", &arr(&|r| r.journal_ms, 3))
        .metric_raw("scan_build_ms", &arr(&|r| r.scan_ms, 3))
        .metric_raw("journal_speedup", &arr(&|r| r.journal_speedup(), 2))
        .metric_raw("scan_speedup", &arr(&|r| r.scan_speedup(), 2))
        .metric_raw(
            "rows_recomputed_fraction",
            &arr(&|r| r.recomputed_fraction, 4),
        )
        .metric_raw("epoch_ms", &arr(&|r| r.epoch_ms, 1))
        .metric_bool("bit_identical", true)
        .metric_f64("required_low_churn_speedup", REQUIRED_LOW_CHURN_SPEEDUP, 2)
        .metric_f64(
            "required_low_churn_max_recomputed",
            REQUIRED_LOW_CHURN_MAX_RECOMPUTED,
            2,
        );
    r.write();
}
