//! Observability smoke + §7 perf-model validation, recorded to
//! `BENCH_telemetry.json` and `TRACE_telemetry.json`.
//!
//! Four traced sections, all in one process with tracing force-enabled:
//!
//! 1. **Single-rank training** — asserts the engine's phase spans
//!    (`forward`/`recompute`/`backward`/`optimizer`) cover at least
//!    [`REQUIRED_COVERAGE`] of every `epoch` span's wall time, so the
//!    trace actually accounts for where epochs go.
//! 2. **Distributed training** (snapshot partitioning, 2 ranks) — asserts
//!    `comm` spans appear on both rank lanes and the attributed
//!    `comm_us` is nonzero.
//! 3. **Out-of-core training** at half the snapshot working set — asserts
//!    the storage tier emits `store_fault`/`prefetch_wait` spans.
//! 4. **Serving** — advances an [`InferenceServer`], answers queries, and
//!    scrapes the Prometheus exposition once (request-latency histogram
//!    with p50/p99/p999 quantile lines).
//!
//! Everything recorded is drained, exported as Chrome trace-event JSON
//! (Perfetto-loadable), validated with the crate's own `jsonlint`, and
//! written to `TRACE_telemetry.json`.
//!
//! The §7 validation runs the paper's analytical cost model
//! ([`estimate_epoch`]) on the *same* graphs the timed runs used
//! ([`TemporalStats::from_graph`]) and records measured-over-model ratios
//! for the single-rank and 2-rank configurations. The machine constants
//! are calibrated for the paper's GPUs, not this host's CPUs, so the
//! ratio is recorded for trend tracking rather than asserted tightly —
//! what is asserted is that both sides are finite and positive.

use std::time::Instant;

use dgnn_autograd::ParamStore;
use dgnn_core::prelude::*;
use dgnn_core::train_single_out_of_core;
use dgnn_graph::stats::TemporalStats;
use dgnn_serve::{Checkpoint, InferenceServer, InferenceSession, ServeModel};
use dgnn_store::StoreConfig;
use dgnn_stream::EdgeEvent;
use dgnn_telemetry::{jsonlint, trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::BenchReport;
use crate::store::working_set_bytes;

/// Minimum fraction of each `epoch` span's wall time that the four engine
/// phase spans must account for.
pub const REQUIRED_COVERAGE: f64 = 0.95;

/// Phase-span coverage of the `epoch` spans in `events`: total phase
/// duration over total epoch duration, plus the worst single epoch.
fn span_coverage(events: &[trace::Event]) -> (f64, f64) {
    const PHASES: [&str; 4] = ["forward", "recompute", "backward", "optimizer"];
    let mut total_epoch = 0u64;
    let mut total_phase = 0u64;
    let mut worst = 1.0f64;
    for epoch in events.iter().filter(|e| e.name == "epoch") {
        let (lo, hi) = (epoch.ts_ns, epoch.ts_ns + epoch.dur_ns);
        let phase: u64 = events
            .iter()
            .filter(|e| {
                PHASES.contains(&e.name)
                    && e.rank == epoch.rank
                    && e.tid == epoch.tid
                    && e.ts_ns >= lo
                    && e.ts_ns < hi
            })
            .map(|e| e.dur_ns)
            .sum();
        total_epoch += epoch.dur_ns;
        total_phase += phase;
        if epoch.dur_ns > 0 {
            worst = worst.min(phase as f64 / epoch.dur_ns as f64);
        }
    }
    let overall = if total_epoch == 0 {
        0.0
    } else {
        total_phase as f64 / total_epoch as f64
    };
    (overall, worst)
}

fn fresh_params(cfg: ModelConfig) -> (Model, LinkPredHead, ParamStore) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    (model, head, store)
}

/// Runs the observability smoke + perf-model validation. `fast` shrinks
/// the workload for the CI smoke step.
pub fn run(fast: bool) {
    let (n, t, m, epochs) = if fast {
        (2048, 8, 12_000, 2)
    } else {
        (4096, 8, 24_000, 3)
    };
    let nb = 4usize;
    trace::set_enabled(true);
    trace::clear();

    let cfg = ModelConfig {
        kind: ModelKind::CdGcn,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    };
    println!("== Telemetry smoke: n={n}, T={t}, m={m}, nb={nb}, CD-GCN ==");
    let g = dgnn_graph::gen::churn_skewed(n, t + 1, m, 0.3, 0.9, 17);
    let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
    let raw = g.time_slice(0, t);
    let next = g.snapshot(t).clone();
    let stats = TemporalStats::from_graph(&raw);

    // -- 1. Single-rank: traced epoch + span coverage ------------------
    let opts = TrainOptions {
        epochs,
        lr: 0.05,
        nb,
        seed: 7,
        threads: None,
    };
    let (model, head, mut store) = fresh_params(cfg);
    let start = Instant::now();
    let single_stats = train_single(&model, &head, &mut store, &task, &opts);
    let single_ms = start.elapsed().as_secs_f64() * 1e3 / epochs as f64;
    let single_events = trace::take_events();
    let (coverage, worst_coverage) = span_coverage(&single_events);
    println!(
        "single-rank: {single_ms:.1} ms/epoch, span coverage {:.1}% (worst epoch {:.1}%)",
        coverage * 100.0,
        worst_coverage * 100.0
    );
    let last = single_stats.last().expect("at least one epoch");
    assert!(
        last.phase.busy_us() > 0,
        "traced run must populate the per-epoch phase breakdown"
    );
    assert!(
        worst_coverage >= REQUIRED_COVERAGE,
        "phase spans must cover >= {:.0}% of every epoch span, worst epoch covered {:.1}%",
        REQUIRED_COVERAGE * 100.0,
        worst_coverage * 100.0
    );

    // -- 2. Distributed (2 ranks): comm spans on every lane ------------
    let dist_opts = TrainOptions {
        epochs: epochs.min(2),
        ..opts
    };
    let task_opts = TaskOptions::default();
    let start = Instant::now();
    let dist_stats = train_distributed(&raw, &next, cfg, &task_opts, &dist_opts, 2);
    let dist_ms = start.elapsed().as_secs_f64() * 1e3 / dist_opts.epochs as f64;
    let dist_events = trace::take_events();
    let dist_comm_us = dist_stats.last().expect("epochs").phase.comm_us;
    let comm_ranks: std::collections::BTreeSet<u32> = dist_events
        .iter()
        .filter(|e| e.name == "comm")
        .map(|e| e.rank)
        .collect();
    println!(
        "distributed p=2: {dist_ms:.1} ms/epoch, comm {} us/epoch on ranks {comm_ranks:?}",
        dist_comm_us
    );
    assert!(
        comm_ranks.len() >= 2,
        "comm spans must appear on both rank lanes, got {comm_ranks:?}"
    );
    assert!(
        dist_comm_us > 0,
        "traced comm_us attribution must be nonzero"
    );

    // -- 3. Out-of-core: store tier spans ------------------------------
    let budget = working_set_bytes(&task) / 2;
    let scfg = StoreConfig::with_budget(budget);
    let ooc_opts = TrainOptions { epochs: 1, ..opts };
    let (model, head, mut store) = fresh_params(cfg);
    let (_, store_report) =
        train_single_out_of_core(&model, &head, &mut store, &task, &ooc_opts, &scfg)
            .expect("out-of-core run must succeed");
    let store_events = trace::take_events();
    let faults = store_events
        .iter()
        .filter(|e| e.name == "store_fault")
        .count();
    let waits = store_events
        .iter()
        .filter(|e| e.name == "prefetch_wait")
        .count();
    println!(
        "out-of-core at half working set: {faults} store_fault + {waits} prefetch_wait spans, \
         {} bytes faulted",
        store_report.miss_bytes
    );
    assert!(
        faults + waits > 0,
        "half the working set must produce store_fault/prefetch_wait spans"
    );

    // -- 4. Serving: advance spans + one metrics scrape ----------------
    let serve_cfg = ModelConfig {
        kind: ModelKind::EvolveGcn,
        input_f: 4,
        hidden: 8,
        mprod_window: 3,
        smoothing_window: 3,
    };
    let (model, head, store) = fresh_params(serve_cfg);
    let cp = Checkpoint::from_store(&model, &head, &store);
    let serve_model = ServeModel::from_checkpoint(&cp).expect("serve model");
    let features = Dense::from_fn(64, 4, |r, c| ((r * 13 + c * 5) % 11) as f32 / 11.0);
    let server = InferenceServer::new(InferenceSession::new(serve_model, features));
    for w in 0..3u64 {
        let evs: Vec<EdgeEvent> = (0..8)
            .map(|i| EdgeEvent::add(w, (w as u32 * 8 + i) % 64, (i * 7 + 3) % 64, 1.0))
            .collect();
        server.ingest_and_advance(&evs);
    }
    server.predict_nodes(&[0, 1, 2, 3]);
    server.score_links(&[(0, 1), (2, 3)]);
    let exposition = server.metrics_exposition();
    for needle in [
        "# TYPE serve_request_us histogram",
        "serve_request_us{quantile=\"0.5\"}",
        "serve_request_us{quantile=\"0.99\"}",
        "serve_request_us{quantile=\"0.999\"}",
        "serve_requests_total 2",
        "serve_advances_total 3",
    ] {
        assert!(
            exposition.contains(needle),
            "metrics exposition is missing {needle:?}:\n{exposition}"
        );
    }
    println!(
        "serve: scraped {} exposition lines with request-latency quantiles",
        exposition.lines().count()
    );
    let serve_events = trace::take_events();

    // -- Export: one Perfetto-loadable trace over all four sections ----
    let dropped = trace::dropped_events();
    let mut all = single_events;
    all.extend(dist_events);
    all.extend(store_events);
    all.extend(serve_events);
    all.sort_by_key(|e| (e.ts_ns, e.rank, e.tid));
    let json = trace::export_chrome(&all);
    jsonlint::validate(&json).expect("exported trace must be valid JSON");
    for name in [
        "\"epoch\"",
        "\"forward\"",
        "\"recompute\"",
        "\"backward\"",
        "\"optimizer\"",
        "\"comm\"",
        "\"serve_advance\"",
        "\"advance_incremental\"",
    ] {
        assert!(json.contains(name), "trace export is missing {name} spans");
    }
    match std::fs::write("TRACE_telemetry.json", &json) {
        Ok(()) => println!("wrote TRACE_telemetry.json ({} events)", all.len()),
        Err(e) => println!("could not write TRACE_telemetry.json: {e}"),
    }

    // -- §7 cost model vs measured -------------------------------------
    let single_model = estimate_epoch(&PerfConfig::new(
        dgnn_sim::ModelKind::CdGcn,
        stats.clone(),
        1,
        nb,
    ));
    let dist_model = estimate_epoch(&PerfConfig::new(dgnn_sim::ModelKind::CdGcn, stats, 2, nb));
    let single_ratio = single_ms / single_model.total_ms();
    let dist_ratio = dist_ms / dist_model.total_ms();
    // Traced per-phase analogues of the model's compute split: mean over
    // the run's epochs of the four engine-phase spans.
    let mean_compute_ms = |stats: &[EpochStats]| {
        stats.iter().map(|s| s.phase.busy_us()).sum::<u64>() as f64 / 1e3 / stats.len() as f64
    };
    let single_compute_ms = mean_compute_ms(&single_stats);
    let dist_compute_ms = mean_compute_ms(&dist_stats);
    println!(
        "§7 model: single-rank {:.3} ms modelled vs {single_ms:.1} ms measured \
         (x{single_ratio:.0}); p=2 {:.3} ms modelled vs {dist_ms:.1} ms measured \
         (x{dist_ratio:.0})",
        single_model.total_ms(),
        dist_model.total_ms()
    );
    for (label, v) in [
        ("single model", single_model.total_ms()),
        ("single ratio", single_ratio),
        ("dist model", dist_model.total_ms()),
        ("dist ratio", dist_ratio),
    ] {
        assert!(
            v.is_finite() && v > 0.0,
            "{label} must be finite and positive, got {v}"
        );
    }

    let mut rep = BenchReport::new("telemetry");
    rep.config_bool("fast", fast)
        .config_u64("n", n as u64)
        .config_u64("t", t as u64)
        .config_u64("edges_per_snapshot", m as u64)
        .config_u64("nb", nb as u64)
        .config_str("model", "cdgcn")
        .config_u64("dist_ranks", 2);
    rep.metric_f64("span_coverage", coverage, 4)
        .metric_f64("worst_epoch_span_coverage", worst_coverage, 4)
        .metric_f64("required_span_coverage", REQUIRED_COVERAGE, 2)
        .metric_u64("trace_events", all.len() as u64)
        .metric_u64("dropped_events", dropped)
        .metric_f64("single_measured_epoch_ms", single_ms, 3)
        .metric_f64("single_model_epoch_ms", single_model.total_ms(), 3)
        .metric_f64("single_measured_over_model", single_ratio, 2)
        // Per-phase columns: the traced breakdown against the model's
        // compute/comm/transfer split (transfer has no measured analogue
        // on this host — snapshots are already resident — so only the
        // modelled figure is recorded).
        .metric_f64("single_measured_compute_ms", single_compute_ms, 3)
        .metric_f64("single_model_compute_ms", single_model.compute_ms, 3)
        .metric_f64(
            "single_model_transfer_ms",
            single_model.all_transfer_ms(),
            3,
        )
        .metric_f64("dist_measured_epoch_ms", dist_ms, 3)
        .metric_f64("dist_model_epoch_ms", dist_model.total_ms(), 3)
        .metric_f64("dist_measured_over_model", dist_ratio, 2)
        .metric_f64("dist_measured_compute_ms", dist_compute_ms, 3)
        .metric_f64("dist_model_compute_ms", dist_model.compute_ms, 3)
        .metric_f64("dist_measured_comm_ms", dist_comm_us as f64 / 1e3, 3)
        .metric_f64("dist_model_comm_ms", dist_model.comm_ms, 3)
        .metric_f64("dist_model_transfer_ms", dist_model.all_transfer_ms(), 3)
        .metric_u64("dist_comm_us_per_epoch", dist_comm_us)
        .metric_u64("store_fault_spans", faults as u64)
        .metric_u64("prefetch_wait_spans", waits as u64)
        .metric_u64("store_miss_bytes", store_report.miss_bytes);
    rep.write();

    println!(
        "PASS: phase spans cover >= {:.0}% of every traced epoch; comm, store, and serve \
         spans exported; metrics quantiles scraped",
        REQUIRED_COVERAGE * 100.0
    );
}
