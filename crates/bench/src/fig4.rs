//! Experiment E2 — paper Figure 4: naive (Base) vs graph-difference (GD)
//! snapshot transfer, per dataset-model pair, across GPU counts.
//!
//! Reproduced analytically at full paper scale: the engine consumes the
//! closed-form per-snapshot statistics of the calibrated stand-ins.
//! Expected shape (paper §6.2): GD transfer speedups up to ~4.1x on the
//! smoothed inputs of TM-GCN/EvolveGCN, up to ~2x on CD-GCN's raw inputs,
//! overall time reductions up to ~40%, and gains that shrink as P grows
//! (the `(bsize_p − 1)/bsize_p` benefit fraction).

use dgnn_graph::datasets::paper_datasets;
use dgnn_sim::perf::{estimate_epoch, tune_nb, ModelKind, PerfConfig};

use crate::{ms, smoothing_for, P_SWEEP};

/// Runs the Figure 4 harness. `fast` restricts the P sweep.
pub fn run(fast: bool) {
    println!("== Figure 4: Base vs GD snapshot transfer ==");
    let sweep: &[usize] = if fast { &[1, 8, 128] } else { &P_SWEEP };
    let mut max_speedup: f64 = 0.0;
    let mut max_reduction: f64 = 0.0;
    let mut max_speedup_cd: f64 = 0.0;
    for model in ModelKind::all() {
        for spec in paper_datasets() {
            println!("\n-- {} / {} --", model.name(), spec.name);
            println!(
                "{:>4} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
                "P", "Base xfer", "GD xfer", "Base tot", "GD tot", "xfer spd", "tot red"
            );
            let stats = spec.stats(smoothing_for(model, &spec));
            for &p in sweep {
                let base_cfg = PerfConfig {
                    gd: false,
                    ..PerfConfig::new(model, stats.clone(), p, 1)
                };
                // Tune nb once (on the GD config) and share it, as the
                // paper does per configuration.
                let Some((nb, _)) = tune_nb(&PerfConfig {
                    gd: true,
                    ..base_cfg.clone()
                }) else {
                    println!("{p:>4} {:>10}", "OOM");
                    continue;
                };
                let base = estimate_epoch(&PerfConfig {
                    nb,
                    ..base_cfg.clone()
                });
                let gd = estimate_epoch(&PerfConfig {
                    nb,
                    gd: true,
                    ..base_cfg
                });
                let spd = base.transfer_ms / gd.transfer_ms.max(1e-9);
                let red = 1.0 - gd.total_ms() / base.total_ms();
                println!(
                    "{p:>4} {:>10} {:>10} {:>10} {:>10} {:>7.2}x {:>7.1}%",
                    ms(base.transfer_ms),
                    ms(gd.transfer_ms),
                    ms(base.total_ms()),
                    ms(gd.total_ms()),
                    spd,
                    red * 100.0
                );
                if model == ModelKind::CdGcn {
                    max_speedup_cd = max_speedup_cd.max(spd);
                } else {
                    max_speedup = max_speedup.max(spd);
                }
                max_reduction = max_reduction.max(red);
            }
        }
    }
    println!();
    println!("summary vs paper:");
    println!(
        "  max GD transfer speedup (smoothed models): {max_speedup:.2}x   (paper: up to 4.1x)"
    );
    println!(
        "  max GD transfer speedup (CD-GCN, raw):     {max_speedup_cd:.2}x   (paper: up to 2x)"
    );
    println!(
        "  max overall time reduction:                {:.1}%   (paper: up to 40%)",
        max_reduction * 100.0
    );
}
