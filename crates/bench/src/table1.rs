//! Experiment E1 — paper Table 1: dataset metadata and the size of the
//! smoothed graphs after M-product and edge-life.
//!
//! The stand-in generators are calibrated so the *closed-form* smoothed
//! totals match the paper at full scale; a scaled-down instantiation is
//! then materialised and smoothed for real to validate the closed form.

use dgnn_graph::datasets::paper_datasets;
use dgnn_graph::{Smoothing, TemporalStats};

fn fmt_m(v: u64) -> String {
    if v >= 1_000_000_000 {
        format!("{:.2}B", v as f64 / 1e9)
    } else {
        format!("{:.0}M", v as f64 / 1e6)
    }
}

/// Runs the Table 1 harness. `fast` skips the materialised validation.
pub fn run(fast: bool) {
    println!("== Table 1: datasets and smoothing expansion ==");
    println!(
        "{:<10} {:>8} {:>5} {:>8} | {:>12} {:>12} | {:>12} {:>12} | {:>6} {:>6}",
        "dataset",
        "N",
        "T",
        "nnz",
        "Mprod(paper)",
        "Mprod(ours)",
        "elife(paper)",
        "elife(ours)",
        "w",
        "l"
    );
    for spec in paper_datasets() {
        let w = spec.calibrated_mproduct_window();
        let l = spec.calibrated_edge_life();
        let ours_mp = spec.stats(Smoothing::MProduct(w)).total_nnz();
        let ours_el = spec.stats(Smoothing::EdgeLife(l)).total_nnz();
        println!(
            "{:<10} {:>8} {:>5} {:>8} | {:>12} {:>12} | {:>12} {:>12} | {:>6} {:>6}",
            spec.name,
            fmt_m(spec.n),
            spec.t,
            fmt_m(spec.nnz),
            fmt_m(spec.nnz_mproduct),
            fmt_m(ours_mp),
            fmt_m(spec.nnz_edgelife),
            fmt_m(ours_el),
            w,
            l
        );
    }

    if fast {
        println!("(fast mode: skipping materialised validation)");
        return;
    }

    println!();
    println!("-- materialised validation (scaled stand-ins) --");
    println!(
        "{:<10} {:>6} {:>14} {:>14} {:>8}",
        "dataset", "scale", "predicted nnz", "measured nnz", "error"
    );
    for spec in paper_datasets() {
        // Scale so each snapshot holds roughly 1.5k edges.
        let scale = ((spec.edges_per_snapshot() / 1500.0).round() as u64).max(1);
        let g = spec.instantiate(scale, 97);
        let w = spec.calibrated_mproduct_window();
        let smoothed = Smoothing::MProduct(w).apply(&g);
        let measured = smoothed.total_nnz();
        let m = g.total_nnz() as f64 / g.t() as f64;
        let predicted =
            TemporalStats::closed_form_total(g.t(), m, spec.churn_rho, w).round() as u64;
        let err = (measured as f64 - predicted as f64).abs() / predicted as f64;
        println!(
            "{:<10} {:>6} {:>14} {:>14} {:>7.1}%",
            spec.name,
            scale,
            predicted,
            measured,
            err * 100.0
        );
    }
}
