//! Kernel-scaling benchmark: the five hot kernels (`matmul`,
//! `matmul_transa`, `matmul_transb`, `spmm`, `spmm_transa`) timed serially
//! and on 2/4/8 pool threads, with a bitwise cross-check of every timed
//! result against the serial reference and a roofline-style single-thread
//! GFLOP/s column per kernel.
//!
//! On hosts with at least 4 available cores the run *asserts* ≥ 1.7x
//! speedup at 4 threads for the two headline kernels (`matmul`, `spmm`) —
//! the determinism contract makes the comparison exact, so the assertion
//! can gate CI. On smaller hosts (including single-core CI sandboxes) the
//! timings are still recorded but the assertion is skipped: oversubscribed
//! threads cannot demonstrate hardware speedup.
//!
//! Two assertions hold on *every* host because they compare the host to
//! itself: `matmul_transb` must run within [`MAX_TRANSB_VS_MATMUL`]x of
//! `matmul` single-thread (the pre-blocking dot-product form was ~4.2x
//! off), and each blocked GEMM must match its naive serial reference
//! bitwise at the engaged sizes.
//!
//! Results are written to `BENCH_parallel.json` in the working directory
//! to seed the performance trajectory across PRs; `check_baseline` mode
//! instead re-measures single-thread GFLOP/s and compares against the
//! *committed* artifact — all five kernels, a kernel missing from the
//! artifact counts as a regression — failing on a >25% drop (warn-only on
//! sub-4-core hosts or against a baseline recorded with
//! `speedup_asserted: false`, matching that field's existing convention).
//!
//! The SIMD pass (PR 9) is additionally pinned against PR 7's committed
//! scalar numbers: ≥ [`SIMD_GEMM_SPEEDUP`]x on the best GEMM and
//! ≥ [`SIMD_SPMM_SPEEDUP`]x on `spmm`, asserted on capable hosts (≥ 4
//! cores with the AVX2 compiles dispatched) and warn-only elsewhere —
//! single-core sandboxes are too noisy and not hardware-comparable.

use std::hint::black_box;
use std::time::Instant;

use crate::report::BenchReport;
use dgnn_graph::gen::churn;
use dgnn_tensor::{pool, simd, Dense};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Thread counts swept (1 = the serial baseline).
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Speedup the headline kernels must reach at 4 threads on capable hosts.
pub const REQUIRED_SPEEDUP_AT_4: f64 = 1.7;

/// Ceiling on `matmul_transb`'s single-thread time relative to `matmul`
/// at the same size. The packed blocked kernel lands within ~1.1x; the
/// old dot-product form was ~4.2x.
pub const MAX_TRANSB_VS_MATMUL: f64 = 2.0;

/// A kernel may not drop below this fraction of the committed baseline's
/// single-thread GFLOP/s in `check_baseline` mode.
pub const BASELINE_MIN_FRACTION: f64 = 0.75;

/// PR 7's committed single-thread `matmul` GFLOP/s (scalar blocked
/// kernels, 320³) — the fixed reference the SIMD pass is measured against.
pub const PR7_SCALAR_MATMUL_GFLOPS_1T: f64 = 19.3;

/// PR 7's committed single-thread `spmm` GFLOP/s (20000v / ~420k nnz /
/// f32×64) — the fixed reference the SELL + prefetch pass is measured
/// against.
pub const PR7_SCALAR_SPMM_GFLOPS_1T: f64 = 3.75;

/// Required speedup of the best GEMM over [`PR7_SCALAR_MATMUL_GFLOPS_1T`]
/// on capable hosts.
pub const SIMD_GEMM_SPEEDUP: f64 = 1.3;

/// Required speedup of `spmm` over [`PR7_SCALAR_SPMM_GFLOPS_1T`] on
/// capable hosts.
pub const SIMD_SPMM_SPEEDUP: f64 = 1.5;

/// One kernel's measurements across the thread sweep.
pub struct KernelResult {
    /// Kernel name (`matmul`, `spmm`, …).
    pub name: &'static str,
    /// Problem-size label (e.g. `320x320x320`).
    pub size: String,
    /// Floating-point operations one call performs (mul+add counted
    /// separately: `2·m·k·n` for the GEMMs, `2·nnz·f` for the SpMMs).
    pub flops: f64,
    /// Best-of-N wall time in microseconds, aligned with [`THREAD_SWEEP`]
    /// (single-entry in `check_baseline` mode, which only measures 1T).
    pub us: Vec<f64>,
}

impl KernelResult {
    /// Speedup of `threads` over the serial baseline.
    pub fn speedup(&self, threads: usize) -> f64 {
        let i = THREAD_SWEEP
            .iter()
            .position(|&t| t == threads)
            .expect("thread count not in sweep");
        self.us[0] / self.us[i]
    }

    /// Single-thread throughput in GFLOP/s — the roofline column: a
    /// size-normalized number that stays diffable across PRs even when
    /// the benched problem sizes change.
    pub fn gflops_1t(&self) -> f64 {
        self.flops / (self.us[0] * 1e3)
    }
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn dense_rand(rows: usize, cols: usize, rng: &mut StdRng) -> Dense {
    Dense::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

fn bits_eq(a: &Dense, b: &Dense) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Times `kernel` across the thread sweep (or 1T only) and cross-checks
/// each timed configuration bitwise against the serial result.
fn sweep(
    name: &'static str,
    size: String,
    flops: f64,
    reps: usize,
    single_thread_only: bool,
    kernel: impl Fn() -> Dense,
) -> KernelResult {
    let reference = {
        let _g = pool::scoped_threads(Some(1));
        kernel()
    };
    let threads_to_run: &[usize] = if single_thread_only {
        &THREAD_SWEEP[..1]
    } else {
        &THREAD_SWEEP
    };
    let mut us = Vec::with_capacity(threads_to_run.len());
    for &threads in threads_to_run {
        let _g = pool::scoped_threads(Some(threads));
        let got = kernel();
        assert!(
            bits_eq(&got, &reference),
            "{name}: {threads}-thread result is not bit-identical to serial"
        );
        us.push(best_of(reps, &kernel));
    }
    KernelResult {
        name,
        size,
        flops,
        us,
    }
}

/// The naive i-k-j serial GEMM — the pre-blocking `matmul` loop. On the
/// finite random bench inputs this is bitwise what every pre-change GEMM
/// variant computed, so it pins the blocked kernels to history.
fn naive_gemm(a: &Dense, b: &Dense) -> Dense {
    let (m, kk, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Dense::zeros(m, n);
    for i in 0..m {
        for k in 0..kk {
            let av = a.get(i, k);
            for j in 0..n {
                let cur = out.get(i, j);
                out.set(i, j, cur + av * b.get(k, j));
            }
        }
    }
    out
}

/// Asserts the blocked GEMMs are bit-identical to the pre-change kernels
/// at an engaged size: `matmul` against the naive triple loop, and both
/// transposed variants against their explicit-transpose `matmul` forms
/// (which is exactly the accumulation order the old kernels used).
fn assert_gemm_parity(a: &Dense, b: &Dense) {
    let _g = pool::scoped_threads(Some(1));
    let reference = naive_gemm(a, b);
    assert!(
        bits_eq(&a.matmul(b), &reference),
        "blocked matmul diverges from the naive serial reference"
    );
    assert!(
        bits_eq(&a.matmul_transb(&b.transpose()), &reference),
        "packed matmul_transb diverges from matmul's bits"
    );
    assert!(
        bits_eq(&a.transpose().matmul_transa(b), &reference),
        "packed matmul_transa diverges from matmul's bits"
    );
}

/// Runs the kernel-scaling sweep. `fast` shrinks the problem sizes;
/// `check_baseline` measures single-thread only, skips the artifact
/// write, and compares GFLOP/s against the committed
/// `BENCH_parallel.json` instead.
pub fn run(fast: bool, check_baseline: bool) -> Vec<KernelResult> {
    let host_threads = pool::host_parallelism();
    // Read the committed artifact *before* anything can overwrite it.
    let baseline = if check_baseline {
        read_baseline("BENCH_parallel.json")
    } else {
        Vec::new()
    };
    // f = 64 in both modes so the spmm_transa transpose path clears its
    // break-even at 4 threads; fast mode still finishes in seconds.
    let (gemm_n, spmm_n, spmm_m, feat, reps) = if fast {
        (256usize, 10_000usize, 100_000usize, 64usize, 5usize)
    } else {
        (320, 20_000, 200_000, 64, 7)
    };
    println!(
        "== Kernel scaling: serial vs {:?} threads (host has {host_threads}{}) ==",
        &THREAD_SWEEP[1..],
        if check_baseline {
            "; baseline-check mode, 1T only"
        } else {
            ""
        }
    );

    let mut rng = StdRng::seed_from_u64(42);
    let a = dense_rand(gemm_n, gemm_n, &mut rng);
    let b = dense_rand(gemm_n, gemm_n, &mut rng);
    let g = churn(spmm_n, 1, spmm_m, 0.0, 7);
    let lap = g.snapshot(0).laplacian();
    let x = dense_rand(spmm_n, feat, &mut rng);

    // Bitwise parity with the pre-change kernels at the engaged size.
    assert_gemm_parity(&a, &b);
    println!("parity: blocked GEMMs bit-identical to the naive serial reference at {gemm_n}^3");

    let gemm_flops = 2.0 * (gemm_n as f64).powi(3);
    let spmm_flops = 2.0 * lap.nnz() as f64 * feat as f64;
    let gemm_size = format!("{gemm_n}x{gemm_n}x{gemm_n}");
    // f32x{feat} = feature width in f32 columns (the old `f64` label read
    // as double precision; the workspace is f32 end-to-end).
    let spmm_size = format!("{spmm_n}v/{}nnz/f32x{feat}", lap.nnz());
    let results = vec![
        sweep(
            "matmul",
            gemm_size.clone(),
            gemm_flops,
            reps,
            check_baseline,
            || a.matmul(&b),
        ),
        sweep(
            "matmul_transa",
            gemm_size.clone(),
            gemm_flops,
            reps,
            check_baseline,
            || a.matmul_transa(&b),
        ),
        sweep(
            "matmul_transb",
            gemm_size,
            gemm_flops,
            reps,
            check_baseline,
            || a.matmul_transb(&b),
        ),
        sweep(
            "spmm",
            spmm_size.clone(),
            spmm_flops,
            reps,
            check_baseline,
            || lap.spmm(&x),
        ),
        sweep(
            "spmm_transa",
            spmm_size,
            spmm_flops,
            reps,
            check_baseline,
            || lap.spmm_transa(&x),
        ),
    ];

    if check_baseline {
        println!(
            "{:<14} {:>22} {:>9}  GFLOP/s(1T)",
            "kernel", "size", "1T µs"
        );
        for r in &results {
            println!(
                "{:<14} {:>22} {:>9.0}  {:.2}",
                r.name,
                r.size,
                r.us[0],
                r.gflops_1t()
            );
        }
    } else {
        println!(
            "{:<14} {:>22} {:>9} {:>9} {:>9} {:>9}  speedup@4  GFLOP/s(1T)",
            "kernel", "size", "1T µs", "2T µs", "4T µs", "8T µs"
        );
        for r in &results {
            println!(
                "{:<14} {:>22} {:>9.0} {:>9.0} {:>9.0} {:>9.0}  {:>8.2}x  {:.2}",
                r.name,
                r.size,
                r.us[0],
                r.us[1],
                r.us[2],
                r.us[3],
                r.speedup(4),
                r.gflops_1t()
            );
        }
    }

    // Host-relative assertion, valid everywhere: the gate-split backward's
    // hot kernel must stay within MAX_TRANSB_VS_MATMUL of plain matmul.
    let matmul_1t = results[0].us[0];
    let transb_1t = results[2].us[0];
    assert!(
        transb_1t <= MAX_TRANSB_VS_MATMUL * matmul_1t,
        "matmul_transb at {transb_1t:.0}µs exceeds {MAX_TRANSB_VS_MATMUL}x matmul \
         ({matmul_1t:.0}µs) single-thread — the transb pathology is back"
    );
    println!(
        "PASS: matmul_transb within {:.2}x of matmul single-thread (limit {MAX_TRANSB_VS_MATMUL}x)",
        transb_1t / matmul_1t
    );

    assert_simd_pass_vs_pr7(&results, host_threads);

    if check_baseline {
        compare_against_baseline(&results, &baseline, host_threads);
        return results;
    }

    write_json(&results, host_threads);

    // available_parallelism counts SMT threads, and 4-vCPU CI runners are
    // typically 2 physical cores: the compute-bound matmul still scales
    // there, but the memory-bound spmm may not, so it is only asserted on
    // hosts with >= 8 logical CPUs (>= 4 physical cores under SMT).
    let gated: Vec<&str> = match host_threads {
        0..=3 => Vec::new(),
        4..=7 => vec!["matmul"],
        _ => vec!["matmul", "spmm"],
    };
    if gated.is_empty() {
        println!(
            "SKIP: speedup assertion needs >= 4 host cores (have {host_threads}); \
             bitwise serial/parallel equality was still verified"
        );
    } else {
        for name in &gated {
            let r = results.iter().find(|r| r.name == *name).unwrap();
            let s = r.speedup(4);
            assert!(
                s >= REQUIRED_SPEEDUP_AT_4,
                "{name}: expected >= {REQUIRED_SPEEDUP_AT_4}x at 4 threads, got {s:.2}x"
            );
        }
        println!(
            "PASS: {} reach >= {REQUIRED_SPEEDUP_AT_4}x at 4 threads",
            gated.join(", ")
        );
    }
    results
}

/// One kernel's committed-baseline facts, as parsed from the artifact.
struct BaselineKernel {
    name: String,
    gflops_1t: Option<f64>,
    /// The artifact-level `speedup_asserted` flag (repeated per kernel
    /// for convenience): baselines recorded on sub-4-core hosts carry
    /// `false` and are compared warn-only.
    asserted: bool,
}

/// Extracts per-kernel `gflops_1t` (and the `speedup_asserted` flag) from
/// a committed `BENCH_parallel.json`. The artifact is written by
/// [`BenchReport`] with one kernel object per line, so a line-oriented
/// scan is robust without a JSON value parser; kernels from an
/// older-schema artifact (no `gflops_1t` field) parse with `None`.
fn read_baseline(path: &str) -> Vec<BaselineKernel> {
    let Ok(doc) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let asserted = doc.contains("\"speedup_asserted\": true");
    doc.lines()
        .filter_map(|line| {
            let name = json_str_field(line, "name")?;
            Some(BaselineKernel {
                name,
                gflops_1t: json_num_field(line, "gflops_1t"),
                asserted,
            })
        })
        .collect()
}

fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let num: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | 'e' | 'E' | '+'))
        .collect();
    num.parse().ok()
}

/// Pins the SIMD pass against PR 7's committed scalar numbers: the best
/// GEMM must clear [`SIMD_GEMM_SPEEDUP`]x of its reference and `spmm`
/// [`SIMD_SPMM_SPEEDUP`]x of its own. Asserted only on capable hosts
/// (≥ 4 cores *and* the AVX2 compiles dispatched); elsewhere the ratios
/// are printed warn-only — a 1-core sandbox is too noisy to red CI, and a
/// scalar-forced run (`DGNN_SIMD=0`) is measuring the fallback on purpose.
fn assert_simd_pass_vs_pr7(results: &[KernelResult], host_threads: usize) {
    let best_gemm = results[..3]
        .iter()
        .map(KernelResult::gflops_1t)
        .fold(0.0f64, f64::max);
    let spmm = results
        .iter()
        .find(|r| r.name == "spmm")
        .expect("spmm result present")
        .gflops_1t();
    let gemm_ratio = best_gemm / PR7_SCALAR_MATMUL_GFLOPS_1T;
    let spmm_ratio = spmm / PR7_SCALAR_SPMM_GFLOPS_1T;
    let line = format!(
        "SIMD vs PR-7 scalar: best GEMM {best_gemm:.2} GFLOP/s ({gemm_ratio:.2}x of {PR7_SCALAR_MATMUL_GFLOPS_1T}, need {SIMD_GEMM_SPEEDUP}x), spmm {spmm:.2} ({spmm_ratio:.2}x of {PR7_SCALAR_SPMM_GFLOPS_1T}, need {SIMD_SPMM_SPEEDUP}x)"
    );
    let ok = gemm_ratio >= SIMD_GEMM_SPEEDUP && spmm_ratio >= SIMD_SPMM_SPEEDUP;
    if host_threads >= 4 && simd::enabled() {
        assert!(ok, "{line}");
        println!("PASS: {line}");
    } else if ok {
        println!("PASS (not enforced: sub-4-core host or SIMD off): {line}");
    } else {
        println!("WARN (not enforced: sub-4-core host or SIMD off): {line}");
    }
}

/// Fails (or warns) when any re-measured kernel drops below
/// [`BASELINE_MIN_FRACTION`] of the committed baseline's single-thread
/// GFLOP/s. Warn-only when this host has < 4 cores or the baseline was
/// recorded with `speedup_asserted: false` (i.e. on such a host) —
/// cross-host single-thread throughput is not comparable enough to red CI.
fn compare_against_baseline(
    results: &[KernelResult],
    baseline: &[BaselineKernel],
    host_threads: usize,
) {
    if baseline.is_empty() {
        println!("WARN: no committed BENCH_parallel.json baseline found; nothing to compare");
        return;
    }
    let enforce = host_threads >= 4 && baseline.iter().all(|b| b.asserted);
    let mut regressions = Vec::new();
    for r in results {
        let Some(base) = baseline.iter().find(|b| b.name == r.name) else {
            // Coverage is part of the guard: a kernel silently dropped
            // from the artifact must not un-guard itself.
            regressions.push(format!("{}: missing from the committed baseline", r.name));
            continue;
        };
        let Some(base_gflops) = base.gflops_1t else {
            regressions.push(format!(
                "{}: committed baseline lacks a gflops_1t field",
                r.name
            ));
            continue;
        };
        let got = r.gflops_1t();
        let frac = got / base_gflops;
        println!(
            "baseline: {:<14} {:.2} GFLOP/s vs committed {:.2} ({:.0}%)",
            r.name,
            got,
            base_gflops,
            frac * 100.0
        );
        if frac < BASELINE_MIN_FRACTION {
            regressions.push(format!(
                "{}: {got:.2} GFLOP/s is {:.0}% of the committed {base_gflops:.2}",
                r.name,
                frac * 100.0
            ));
        }
    }
    if regressions.is_empty() {
        println!(
            "PASS: no kernel below {:.0}% of the committed baseline",
            BASELINE_MIN_FRACTION * 100.0
        );
    } else if enforce {
        panic!("kernel GFLOP/s regression vs baseline: {regressions:?}");
    } else {
        println!("WARN (not enforced: sub-4-core host or unasserted baseline): {regressions:?}");
    }
}

fn write_json(results: &[KernelResult], host_threads: usize) {
    let mut r = BenchReport::new("kernel_scaling");
    r.config_bool("speedup_asserted", host_threads >= 4);
    r.config_bool("simd_enabled", simd::enabled());
    if host_threads < 4 {
        r.config_str(
            "note",
            "oversubscribed timings from a sub-4-core host — thread-count overhead only, \
             not hardware speedup; regenerate on a >=4-core host before using as a perf \
             baseline",
        );
    }
    r.config_f64("required_speedup_at_4_threads", REQUIRED_SPEEDUP_AT_4, 2);
    r.config_f64("max_transb_vs_matmul_1t", MAX_TRANSB_VS_MATMUL, 2);
    r.config_f64("baseline_min_fraction", BASELINE_MIN_FRACTION, 2);
    r.metric_raw("thread_sweep", "[1, 2, 4, 8]");
    let mut kernels = String::from("[\n");
    for (i, k) in results.iter().enumerate() {
        kernels.push_str(&format!(
            "    {{\"name\": \"{}\", \"size\": \"{}\", \"us\": [{}], \
             \"speedup_at_4\": {:.3}, \"gflops_1t\": {:.3}}}{}\n",
            k.name,
            k.size,
            k.us.iter()
                .map(|u| format!("{u:.1}"))
                .collect::<Vec<_>>()
                .join(", "),
            k.speedup(4),
            k.gflops_1t(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    kernels.push_str("  ]");
    r.metric_raw("kernels", &kernels);
    r.write_to("BENCH_parallel.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_parser_reads_kernel_lines() {
        let doc = "{\n  \"config\": {\n    \"speedup_asserted\": false\n  },\n  \
                   \"kernels\": [\n    {\"name\": \"matmul\", \"size\": \"320x320x320\", \
                   \"us\": [4210.4, 3923.5], \"speedup_at_4\": 1.073, \"gflops_1t\": 15.565},\n    \
                   {\"name\": \"spmm\", \"size\": \"20000v\", \"us\": [12355.5]}\n  ]\n}\n";
        let path = std::env::temp_dir().join("dgnn_baseline_parse_test.json");
        std::fs::write(&path, doc).unwrap();
        let parsed = read_baseline(path.to_str().unwrap());
        std::fs::remove_file(&path).ok();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "matmul");
        assert!((parsed[0].gflops_1t.unwrap() - 15.565).abs() < 1e-9);
        assert!(!parsed[0].asserted);
        assert_eq!(parsed[1].name, "spmm");
        assert!(parsed[1].gflops_1t.is_none(), "old schema parses as None");
    }

    #[test]
    fn missing_baseline_parses_empty() {
        assert!(read_baseline("/nonexistent/BENCH_parallel.json").is_empty());
    }
}
