//! Kernel-scaling benchmark: the five hot kernels (`matmul`,
//! `matmul_transa`, `matmul_transb`, `spmm`, `spmm_transa`) timed serially
//! and on 2/4/8 pool threads, with a bitwise cross-check of every timed
//! result against the serial reference.
//!
//! On hosts with at least 4 available cores the run *asserts* ≥ 1.7x
//! speedup at 4 threads for the two headline kernels (`matmul`, `spmm`) —
//! the determinism contract makes the comparison exact, so the assertion
//! can gate CI. On smaller hosts (including single-core CI sandboxes) the
//! timings are still recorded but the assertion is skipped: oversubscribed
//! threads cannot demonstrate hardware speedup.
//!
//! Results are written to `BENCH_parallel.json` in the working directory
//! to seed the performance trajectory across PRs.

use std::hint::black_box;
use std::time::Instant;

use crate::report::BenchReport;
use dgnn_graph::gen::churn;
use dgnn_tensor::{pool, Dense};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Thread counts swept (1 = the serial baseline).
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Speedup the headline kernels must reach at 4 threads on capable hosts.
pub const REQUIRED_SPEEDUP_AT_4: f64 = 1.7;

/// One kernel's measurements across the thread sweep.
pub struct KernelResult {
    /// Kernel name (`matmul`, `spmm`, …).
    pub name: &'static str,
    /// Problem-size label (e.g. `320x320x320`).
    pub size: String,
    /// Best-of-N wall time in microseconds, aligned with [`THREAD_SWEEP`].
    pub us: Vec<f64>,
}

impl KernelResult {
    /// Speedup of `threads` over the serial baseline.
    pub fn speedup(&self, threads: usize) -> f64 {
        let i = THREAD_SWEEP
            .iter()
            .position(|&t| t == threads)
            .expect("thread count not in sweep");
        self.us[0] / self.us[i]
    }
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn dense_rand(rows: usize, cols: usize, rng: &mut StdRng) -> Dense {
    Dense::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

/// Times `kernel` across the thread sweep and cross-checks each threaded
/// result bitwise against the serial one.
fn sweep(
    name: &'static str,
    size: String,
    reps: usize,
    kernel: impl Fn() -> Dense,
) -> KernelResult {
    let reference = {
        let _g = pool::scoped_threads(Some(1));
        kernel()
    };
    let mut us = Vec::with_capacity(THREAD_SWEEP.len());
    for &threads in &THREAD_SWEEP {
        let _g = pool::scoped_threads(Some(threads));
        let got = kernel();
        assert!(
            got.data()
                .iter()
                .zip(reference.data())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{name}: {threads}-thread result is not bit-identical to serial"
        );
        us.push(best_of(reps, &kernel));
    }
    KernelResult { name, size, us }
}

/// Runs the kernel-scaling sweep. `fast` shrinks the problem sizes.
pub fn run(fast: bool) -> Vec<KernelResult> {
    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    // f = 64 in both modes so the spmm_transa transpose path clears its
    // break-even at 4 threads; fast mode still finishes in seconds.
    let (gemm_n, spmm_n, spmm_m, feat, reps) = if fast {
        (256usize, 10_000usize, 100_000usize, 64usize, 5usize)
    } else {
        (320, 20_000, 200_000, 64, 7)
    };
    println!(
        "== Kernel scaling: serial vs {:?} threads (host has {host_threads}) ==",
        &THREAD_SWEEP[1..]
    );

    let mut rng = StdRng::seed_from_u64(42);
    let a = dense_rand(gemm_n, gemm_n, &mut rng);
    let b = dense_rand(gemm_n, gemm_n, &mut rng);
    let g = churn(spmm_n, 1, spmm_m, 0.0, 7);
    let lap = g.snapshot(0).laplacian();
    let x = dense_rand(spmm_n, feat, &mut rng);

    let gemm_size = format!("{gemm_n}x{gemm_n}x{gemm_n}");
    let spmm_size = format!("{spmm_n}v/{}nnz/f{feat}", lap.nnz());
    let results = vec![
        sweep("matmul", gemm_size.clone(), reps, || a.matmul(&b)),
        sweep("matmul_transa", gemm_size.clone(), reps, || {
            a.matmul_transa(&b)
        }),
        sweep("matmul_transb", gemm_size, reps, || a.matmul_transb(&b)),
        sweep("spmm", spmm_size.clone(), reps, || lap.spmm(&x)),
        sweep("spmm_transa", spmm_size, reps, || lap.spmm_transa(&x)),
    ];

    println!(
        "{:<14} {:>22} {:>9} {:>9} {:>9} {:>9}  speedup@4",
        "kernel", "size", "1T µs", "2T µs", "4T µs", "8T µs"
    );
    for r in &results {
        println!(
            "{:<14} {:>22} {:>9.0} {:>9.0} {:>9.0} {:>9.0}  {:.2}x",
            r.name,
            r.size,
            r.us[0],
            r.us[1],
            r.us[2],
            r.us[3],
            r.speedup(4)
        );
    }

    write_json(&results, host_threads);

    // available_parallelism counts SMT threads, and 4-vCPU CI runners are
    // typically 2 physical cores: the compute-bound matmul still scales
    // there, but the memory-bound spmm may not, so it is only asserted on
    // hosts with >= 8 logical CPUs (>= 4 physical cores under SMT).
    let gated: Vec<&str> = match host_threads {
        0..=3 => Vec::new(),
        4..=7 => vec!["matmul"],
        _ => vec!["matmul", "spmm"],
    };
    if gated.is_empty() {
        println!(
            "SKIP: speedup assertion needs >= 4 host cores (have {host_threads}); \
             bitwise serial/parallel equality was still verified"
        );
    } else {
        for name in &gated {
            let r = results.iter().find(|r| r.name == *name).unwrap();
            let s = r.speedup(4);
            assert!(
                s >= REQUIRED_SPEEDUP_AT_4,
                "{name}: expected >= {REQUIRED_SPEEDUP_AT_4}x at 4 threads, got {s:.2}x"
            );
        }
        println!(
            "PASS: {} reach >= {REQUIRED_SPEEDUP_AT_4}x at 4 threads",
            gated.join(", ")
        );
    }
    results
}

fn write_json(results: &[KernelResult], host_threads: usize) {
    let mut r = BenchReport::new("kernel_scaling");
    r.config_bool("speedup_asserted", host_threads >= 4);
    if host_threads < 4 {
        r.config_str(
            "note",
            "oversubscribed timings from a sub-4-core host — thread-count overhead only, \
             not hardware speedup; regenerate on a >=4-core host before using as a perf \
             baseline",
        );
    }
    r.config_f64("required_speedup_at_4_threads", REQUIRED_SPEEDUP_AT_4, 2);
    r.metric_raw("thread_sweep", "[1, 2, 4, 8]");
    let mut kernels = String::from("[\n");
    for (i, k) in results.iter().enumerate() {
        kernels.push_str(&format!(
            "    {{\"name\": \"{}\", \"size\": \"{}\", \"us\": [{}], \"speedup_at_4\": {:.3}}}{}\n",
            k.name,
            k.size,
            k.us.iter()
                .map(|u| format!("{u:.1}"))
                .collect::<Vec<_>>()
                .join(", "),
            k.speedup(4),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    kernels.push_str("  ]");
    r.metric_raw("kernels", &kernels);
    r.write_to("BENCH_parallel.json");
}
