//! Serving benchmark: incremental frontier recompute vs full recompute on
//! a window advance, plus batched query latency/throughput, recorded to
//! `BENCH_serve.json`.
//!
//! Every timed incremental advance is cross-checked **bitwise** against
//! the from-scratch forward (outside the timed region), so the measured
//! speedup is between two paths that provably compute the same bits. The
//! workload is gradual churn (a fraction of a percent of edges per
//! window) — the regime a live service sees — where the per-layer
//! frontier stays a small multiple of the touched set and the incremental
//! path must win by at least [`REQUIRED_SPEEDUP`].

use std::hint::black_box;
use std::time::Instant;

use dgnn_autograd::ParamStore;
use dgnn_models::{LinkPredHead, Model, ModelConfig, ModelKind};
use dgnn_serve::{Checkpoint, InferenceServer, InferenceSession, ServeModel};
use dgnn_stream::EdgeEvent;
use dgnn_tensor::Dense;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ms;
use crate::report::BenchReport;

/// Minimum incremental-over-full speedup on the gradual-churn workload.
pub const REQUIRED_SPEEDUP: f64 = 3.0;

/// One serve-bench run's headline numbers.
pub struct ServeBenchResult {
    /// Mean incremental advance time per window (ms).
    pub incremental_ms: f64,
    /// Mean full-recompute time per window (ms).
    pub full_ms: f64,
    /// full / incremental.
    pub speedup: f64,
    /// Batched node-embedding lookups per second.
    pub predict_qps: f64,
    /// Batched link scores per second.
    pub score_qps: f64,
}

/// Runs the serving benchmark. `fast` shrinks the workload (CI smoke).
pub fn run(fast: bool) -> ServeBenchResult {
    // Bounded degree, no hubs: the per-layer frontier of a touched vertex
    // is its d-hop ball, so the incremental regime needs |touched|·deg²
    // well under n. Hub-heavy graphs widen the ball to the whole graph
    // within two hops — that regime degenerates to a full recompute and is
    // exactly what a production deployment would shard around.
    let (n, deg, windows, churn_edges) = if fast {
        (3_000usize, 6usize, 6usize, 8usize)
    } else {
        (10_000, 6, 10, 10)
    };
    let (input_f, hidden) = (16usize, 32usize);
    println!(
        "== Serving: n={n}, ~{} sym edges, {windows} windows x {churn_edges} churned edges, \
         f={input_f}, h={hidden} ==",
        n * deg
    );

    // A real model + head through the checkpoint path, so the bench also
    // exercises save/load.
    let cfg = ModelConfig {
        kind: ModelKind::EvolveGcn,
        input_f,
        hidden,
        mprod_window: 3,
        smoothing_window: 3,
    };
    let mut rng = StdRng::seed_from_u64(42);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let start = Instant::now();
    let bytes = Checkpoint::from_store(&model, &head, &store).to_bytes();
    let cp = Checkpoint::from_bytes(&bytes).expect("checkpoint roundtrip");
    let serve_model = ServeModel::from_checkpoint(&cp).expect("serve model");
    println!(
        "checkpoint: {} params, {} bytes, save+load {}",
        cp.params.len(),
        bytes.len(),
        ms(start.elapsed().as_secs_f64() * 1e3)
    );

    let features = Dense::from_fn(n, input_f, |r, c| {
        ((r * 31 + c * 7) % 23) as f32 / 23.0 - 0.5
    });
    let mut session = InferenceSession::new(serve_model, features);

    // Bulk load: a sparse random graph with a mild power-law flavor.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * deg / 2);
    for _ in 0..n * deg / 2 {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        edges.push((u, v));
    }
    let bulk: Vec<EdgeEvent> = edges
        .iter()
        .map(|&(u, v)| EdgeEvent::add(0, u, v, 1.0))
        .collect();
    session.ingest(&bulk);
    let start = Instant::now();
    session.advance();
    println!(
        "bulk load: {} events applied + first forward in {}",
        bulk.len(),
        ms(start.elapsed().as_secs_f64() * 1e3)
    );
    session.assert_matches_full();

    // -- Window advances: incremental vs full recompute ----------------
    let mut incremental_s = 0.0f64;
    let mut full_s = 0.0f64;
    let mut frontier_total = 0usize;
    for w in 1..=windows as u64 {
        let evs: Vec<EdgeEvent> = (0..churn_edges)
            .flat_map(|_| {
                let (u, v) = edges[rng.gen_range(0..edges.len())];
                let kind = rng.gen_range(0..3u8);
                match kind {
                    0 => {
                        let nu = rng.gen_range(0..n as u32);
                        let nv = rng.gen_range(0..n as u32);
                        vec![EdgeEvent::add(w, nu, nv, 1.0)]
                    }
                    1 => vec![EdgeEvent::remove(w, u, v)],
                    _ => vec![EdgeEvent::update(w, u, v, 2.0)],
                }
            })
            .collect();

        let start = Instant::now();
        session.ingest(&evs);
        let report = session.advance();
        incremental_s += start.elapsed().as_secs_f64();
        frontier_total += report.frontier_rows.last().copied().unwrap_or(0);

        let start = Instant::now();
        let full = session.full_forward();
        full_s += start.elapsed().as_secs_f64();
        black_box(full.last().map(|d| d.len()));

        // Bitwise parity between the two timed paths, every window.
        session.assert_matches_full();
    }
    let incremental_ms = incremental_s * 1e3 / windows as f64;
    let full_ms = full_s * 1e3 / windows as f64;
    let speedup = full_s / incremental_s;
    println!(
        "window advance: incremental {} | full recompute {} | speedup {speedup:.2}x \
         (mean final-layer frontier {} of {n} rows)",
        ms(incremental_ms),
        ms(full_ms),
        frontier_total / windows
    );

    // -- Batched query latency/throughput ------------------------------
    let server = InferenceServer::new(session);
    let batch = 256usize;
    let reps = if fast { 200 } else { 400 };
    let nodes: Vec<u32> = (0..batch as u32).map(|i| (i * 97) % n as u32).collect();
    let pairs: Vec<(u32, u32)> = nodes
        .iter()
        .map(|&u| (u, (u * 31 + 1) % n as u32))
        .collect();

    let start = Instant::now();
    for _ in 0..reps {
        black_box(server.predict_nodes(&nodes));
    }
    let predict_s = start.elapsed().as_secs_f64();
    let predict_qps = (batch * reps) as f64 / predict_s;

    let start = Instant::now();
    for _ in 0..reps {
        black_box(server.score_links(&pairs));
    }
    let score_s = start.elapsed().as_secs_f64();
    let score_qps = (batch * reps) as f64 / score_s;
    println!(
        "queries (batch {batch}): predict_nodes {:.2}M/s ({:.1}µs/batch) | \
         score_links {:.2}M/s ({:.1}µs/batch)",
        predict_qps / 1e6,
        predict_s * 1e6 / reps as f64,
        score_qps / 1e6,
        score_s * 1e6 / reps as f64
    );

    let result = ServeBenchResult {
        incremental_ms,
        full_ms,
        speedup,
        predict_qps,
        score_qps,
    };
    write_json(&result, n, n * deg, windows, churn_edges, fast);

    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "incremental advance should be >= {REQUIRED_SPEEDUP}x a full recompute on gradual churn, \
         got {speedup:.2}x"
    );
    println!(
        "PASS: incremental inference >= {REQUIRED_SPEEDUP}x full recompute, bitwise-identical"
    );
    result
}

fn write_json(
    r: &ServeBenchResult,
    n: usize,
    edges: usize,
    windows: usize,
    churn_edges: usize,
    fast: bool,
) {
    let mut rep = BenchReport::new("serve");
    rep.config_bool("fast", fast)
        .config_u64("n", n as u64)
        .config_u64("edges", edges as u64)
        .config_u64("windows", windows as u64)
        .config_u64("churn_edges_per_window", churn_edges as u64);
    rep.metric_f64("incremental_ms_per_window", r.incremental_ms, 3)
        .metric_f64("full_ms_per_window", r.full_ms, 3)
        .metric_f64("speedup", r.speedup, 2)
        .metric_f64("required_speedup", REQUIRED_SPEEDUP, 2)
        .metric_f64("predict_nodes_per_sec", r.predict_qps, 0)
        .metric_f64("score_links_per_sec", r.score_qps, 0);
    rep.write();
}
