//! Criterion micro-benchmarks of the kernel layer and of small end-to-end
//! training epochs. Sample counts are kept small: these run on whatever
//! box executes `cargo bench`, not the paper's testbed — the tables and
//! figures come from the harness binaries instead.

use std::rc::Rc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dgnn_autograd::ParamStore;
use dgnn_core::prelude::*;
use dgnn_graph::diff::{chunk_transfer, diff, reconstruct};
use dgnn_graph::gen::{churn, churn_skewed};
use dgnn_partition::{partition, Hypergraph, PartitionerConfig};
use dgnn_tensor::init::glorot_uniform;
use dgnn_tensor::{m_banded, normalized_laplacian, Dense};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for &(n, m) in &[(1_000usize, 5_000usize), (5_000, 50_000)] {
        let g = churn(n, 1, m, 0.0, 1);
        let lap = g.snapshot(0).laplacian();
        let x = Dense::from_fn(n, 16, |r, c| ((r * 16 + c) % 17) as f32 * 0.1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{m}")),
            &(),
            |b, ()| b.iter(|| std::hint::black_box(lap.spmm(&x))),
        );
    }
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for &n in &[64usize, 256] {
        let mut rng = StdRng::seed_from_u64(2);
        let a = glorot_uniform(n, n, &mut rng);
        let b_m = glorot_uniform(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |bch, ()| {
            bch.iter(|| std::hint::black_box(a.matmul(&b_m)))
        });
    }
    group.finish();
}

fn bench_lstm_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstm_step");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let cell = dgnn_models::LstmCell::new(&mut store, "l", 8, 8, &mut rng);
    let x_val = glorot_uniform(2_000, 8, &mut rng);
    group.bench_function("rows=2000,h=8", |b| {
        b.iter(|| {
            let mut tape = dgnn_autograd::Tape::new();
            let vars = cell.bind(&mut tape, &store);
            let state = cell.zero_state(&mut tape, 2_000);
            let x = tape.constant(x_val.clone());
            let out = cell.step(&mut tape, vars, x, state);
            std::hint::black_box(tape.value(out.h).sum())
        })
    });
    group.finish();
}

fn bench_graph_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_diff");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let g = churn(5_000, 2, 40_000, 0.2, 4);
    let (a, b) = (g.snapshot(0).adj(), g.snapshot(1).adj());
    group.bench_function("diff_40k_edges", |bch| {
        bch.iter(|| std::hint::black_box(diff(a, b)))
    });
    let d = diff(a, b);
    group.bench_function("reconstruct_40k_edges", |bch| {
        bch.iter(|| std::hint::black_box(reconstruct(a, &d)))
    });
    group.bench_function("chunk_transfer_8_snapshots", |bch| {
        let g = churn(2_000, 8, 16_000, 0.2, 5);
        let slices: Vec<&dgnn_tensor::Csr> = (0..8).map(|t| g.snapshot(t).adj()).collect();
        bch.iter(|| std::hint::black_box(chunk_transfer(&slices)))
    });
    group.finish();
}

fn bench_mproduct(c: &mut Criterion) {
    let mut group = c.benchmark_group("m_product");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let g = churn(2_000, 16, 10_000, 0.3, 6);
    let tensor = g.to_sparse_tensor();
    let m = m_banded(16, 4);
    group.bench_function("sparse_ttm_T16_w4", |b| {
        b.iter(|| std::hint::black_box(tensor.ttm_mode1(&m)))
    });
    group.finish();
}

fn bench_laplacian(c: &mut Criterion) {
    let mut group = c.benchmark_group("laplacian");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let g = churn(5_000, 1, 40_000, 0.0, 7);
    group.bench_function("normalize_40k_edges", |b| {
        b.iter(|| std::hint::black_box(normalized_laplacian(g.snapshot(0).adj(), true)))
    });
    group.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypergraph_partitioner");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let g = churn(1_000, 4, 6_000, 0.2, 8);
    let hg = Hypergraph::column_net_model(&g);
    group.bench_function("n1000_p8", |b| {
        b.iter(|| std::hint::black_box(partition(&hg, &PartitionerConfig::new(8))))
    });
    group.finish();
}

fn bench_autograd_tape(c: &mut Criterion) {
    let mut group = c.benchmark_group("autograd");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let g = churn(2_000, 1, 10_000, 0.0, 9);
    let lap = Rc::new(g.snapshot(0).laplacian());
    let mut rng = StdRng::seed_from_u64(10);
    let x_val = glorot_uniform(2_000, 8, &mut rng);
    let w_val = glorot_uniform(8, 8, &mut rng);
    group.bench_function("gcn_forward_backward", |b| {
        b.iter(|| {
            let mut tape = dgnn_autograd::Tape::new();
            let x = tape.input(x_val.clone());
            let w = tape.input(w_val.clone());
            let agg = tape.spmm(Rc::clone(&lap), x);
            let lin = tape.matmul(agg, w);
            let act = tape.relu(lin);
            let loss = tape.mean_all(act);
            tape.backward_scalar(loss);
            std::hint::black_box(tape.grad(w).unwrap().sum())
        })
    });
    group.finish();
}

fn bench_training_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_epoch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let g = churn_skewed(100, 8, 400, 0.3, 0.9, 11);
    for kind in ModelKind::all() {
        let cfg = ModelConfig {
            kind,
            input_f: 2,
            hidden: 6,
            mprod_window: 3,
            smoothing_window: 3,
        };
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let mut store = ParamStore::new();
                let model = Model::new(cfg, &mut store, &mut rng);
                let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
                let stats = train_single(
                    &model,
                    &head,
                    &mut store,
                    &task,
                    &TrainOptions {
                        epochs: 1,
                        lr: 0.05,
                        nb: 2,
                        seed: 7,
                        threads: None,
                    },
                );
                std::hint::black_box(stats[0].loss)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spmm,
    bench_gemm,
    bench_lstm_step,
    bench_graph_diff,
    bench_mproduct,
    bench_laplacian,
    bench_partitioner,
    bench_autograd_tape,
    bench_training_epoch
);
criterion_main!(benches);
