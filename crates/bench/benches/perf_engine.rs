//! Criterion benchmarks of the analytic performance engine itself and the
//! collective cost models — these are what the table/figure harnesses call
//! thousands of times.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgnn_graph::datasets::AMLSIM;
use dgnn_graph::Smoothing;
use dgnn_sim::collective::{all_reduce_us, all_to_all_us};
use dgnn_sim::perf::{estimate_epoch, ModelKind, PerfConfig};
use dgnn_sim::MachineSpec;

fn bench_estimate_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_epoch");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let spec = AMLSIM;
    let stats = spec.stats(Smoothing::MProduct(spec.calibrated_mproduct_window()));
    for &p in &[1usize, 16, 128] {
        let cfg = PerfConfig::new(ModelKind::TmGcn, stats.clone(), p, 8);
        group.bench_with_input(BenchmarkId::from_parameter(p), &(), |b, ()| {
            b.iter(|| std::hint::black_box(estimate_epoch(&cfg).total_ms()))
        });
    }
    group.finish();
}

fn bench_collective_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("collective_cost_models");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(1));
    let spec = MachineSpec::aimos_like();
    group.bench_function("all_to_all_128", |b| {
        b.iter(|| std::hint::black_box(all_to_all_us(&spec, 128, 1 << 20)))
    });
    group.bench_function("all_reduce_128", |b| {
        b.iter(|| std::hint::black_box(all_reduce_us(&spec, 128, 1 << 20)))
    });
    group.finish();
}

fn bench_closed_form_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("closed_form_stats");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("amlsim_mproduct", |b| {
        b.iter(|| {
            let spec = AMLSIM;
            std::hint::black_box(
                spec.stats(Smoothing::MProduct(spec.calibrated_mproduct_window()))
                    .total_nnz(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_estimate_epoch,
    bench_collective_models,
    bench_closed_form_stats
);
criterion_main!(benches);
